package core

import (
	"strings"
	"testing"

	"repro/internal/mutation"
)

// The §V-H nullable-foreign-key extension: with a NOT NULL foreign key,
// nullifying the referenced attribute is impossible and the mutants are
// equivalent; with a nullable foreign-key column, a NULL value provides
// the unmatched tuple and the mutants become killable.
const nullableDDL = `
CREATE TABLE instructor (
	id INT PRIMARY KEY,
	name VARCHAR(20) NOT NULL
);
CREATE TABLE advisor (
	s_id INT PRIMARY KEY,
	i_id INT,
	FOREIGN KEY (i_id) REFERENCES instructor(id)
);`

const notNullDDL = `
CREATE TABLE instructor (
	id INT PRIMARY KEY,
	name VARCHAR(20) NOT NULL
);
CREATE TABLE advisor (
	s_id INT PRIMARY KEY,
	i_id INT NOT NULL,
	FOREIGN KEY (i_id) REFERENCES instructor(id)
);`

const nullableSQL = `SELECT * FROM instructor i, advisor a WHERE i.id = a.i_id`

func TestNullableFKFallbackGeneratesDataset(t *testing.T) {
	q := buildQuery(t, nullableDDL, nullableSQL)
	suite := generate(t, q, DefaultOptions())

	var nullDS bool
	for _, ds := range suite.Datasets {
		if !strings.Contains(ds.Purpose, "NULL foreign key") {
			continue
		}
		nullDS = true
		// The advisor tuple must carry a NULL i_id and the dataset must
		// still be a legal instance.
		foundNull := false
		for _, row := range ds.Rows("advisor") {
			if row[1].IsNull() {
				foundNull = true
			}
		}
		if !foundNull {
			t.Errorf("no NULL foreign key in dataset:\n%s", ds)
		}
		if err := q.Schema.CheckDataset(ds); err != nil {
			t.Errorf("dataset invalid: %v", err)
		}
	}
	if !nullDS {
		t.Fatalf("nullable-FK fallback dataset not generated; purposes: %v, skips: %+v",
			purposes(suite), suite.Skipped)
	}

	// The ROJ mutant (kept orphan advisors) must now be killed.
	ms, err := mutation.JoinTypeMutants(q, mutation.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mutation.Evaluate(q, ms, suite.All())
	if err != nil {
		t.Fatal(err)
	}
	for mi, m := range ms {
		if strings.Contains(m.Desc, "ROJ") && !rep.MutantKilled(mi) {
			t.Errorf("ROJ mutant not killed despite nullable FK")
		}
	}
}

func TestNotNullFKStaysEquivalent(t *testing.T) {
	// Control: with NOT NULL the fallback must not fire and the skip is
	// recorded (the paper's Example 2 equivalence).
	q := buildQuery(t, notNullDDL, nullableSQL)
	suite := generate(t, q, DefaultOptions())
	for _, ds := range suite.Datasets {
		if strings.Contains(ds.Purpose, "NULL foreign key") {
			t.Errorf("fallback fired for NOT NULL column: %s", ds.Purpose)
		}
	}
	found := false
	for _, sk := range suite.Skipped {
		if strings.Contains(sk.Reason, "equivalent") {
			found = true
		}
	}
	if !found {
		t.Errorf("equivalent-mutant skip not recorded: %+v", suite.Skipped)
	}
}

func TestNullableFKNotUsedWhenColumnInPK(t *testing.T) {
	// A nullable-looking FK column that is part of the primary key can
	// never be NULL; the fallback must not fire.
	const ddl = `
	CREATE TABLE instructor (id INT PRIMARY KEY);
	CREATE TABLE teaches (
		id INT,
		course_id INT NOT NULL,
		PRIMARY KEY (id, course_id),
		FOREIGN KEY (id) REFERENCES instructor(id)
	);`
	q := buildQuery(t, ddl, "SELECT * FROM instructor i, teaches t WHERE i.id = t.id")
	suite := generate(t, q, DefaultOptions())
	for _, ds := range suite.Datasets {
		if strings.Contains(ds.Purpose, "NULL foreign key") {
			t.Errorf("fallback fired for primary-key column: %s", ds.Purpose)
		}
	}
}
