package core

import (
	"testing"

	"repro/internal/engine"
)

// TestArithmeticOffsetDomainClosure is a regression test for a
// finite-domain gap found by the randql soak (seed 10518): a comparison
// constant c contributes boundary values c±1 to the value pool, but if
// the query routes that boundary through an arithmetic join condition
// (a.x + k = b.y), the partner column needs (c±1)±k — two hops from any
// collected constant. The pool used to contain only one-level pairwise
// sums/differences, so salary > 6 AND id = salary + 1 had no
// satisfying assignment inside the pool (8 = (6+1)+1 was missing) and
// the generator wrongly declared the original query unsatisfiable,
// silently skipping every kill dataset with it.
func TestArithmeticOffsetDomainClosure(t *testing.T) {
	q := buildQuery(t, ddlNoFK,
		"SELECT i.id, t.course_id FROM instructor AS i JOIN teaches AS t "+
			"ON i.salary + 1 = t.id WHERE i.salary > 6 AND t.course_id <= t.id")
	suite, err := NewGenerator(q, DefaultOptions()).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if suite.Original == nil {
		t.Fatalf("no dataset satisfying the original query was generated; "+
			"skips: %v", suite.Skipped)
	}
	if err := q.Schema.CheckDataset(suite.Original); err != nil {
		t.Fatalf("original dataset violates schema: %v", err)
	}
	res, err := engine.NewPlan(q).Run(suite.Original)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("original dataset yields an empty result")
	}
}
