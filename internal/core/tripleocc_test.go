package core

import (
	"testing"
)

// TestAggregationWithTripleSelfJoin is a regression test for a slot
// allocation crash found by the randql soak: an aggregated query with
// three occurrences of the same base relation needs 3 occurrences × 3
// tuple sets = 9 slots, which the per-relation slot cap (8) used to trim
// below the occurrence mapping's requirement, panicking with an
// out-of-range slot index inside newProblem. The cap may trim FK repair
// capacity but never base occurrence slots.
func TestAggregationWithTripleSelfJoin(t *testing.T) {
	q := buildQuery(t, ddlNoFK,
		"SELECT i1.dept_name, i2.dept_name, i3.dept_name, MIN(i1.salary) "+
			"FROM instructor AS i1, instructor AS i2, instructor AS i3 "+
			"WHERE i1.dept_name = i2.dept_name AND i2.salary = i3.salary "+
			"GROUP BY i1.dept_name, i2.dept_name, i3.dept_name")
	suite, err := NewGenerator(q, DefaultOptions()).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if suite.Original == nil {
		t.Fatalf("no dataset satisfying the original query was generated")
	}
	if err := q.Schema.CheckDataset(suite.Original); err != nil {
		t.Fatalf("original dataset violates schema: %v", err)
	}
}
