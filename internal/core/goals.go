// Kill-goal pipeline: Algorithm 1 as a two-phase enumerate/solve system.
//
// Phase 1 (enumeration) walks the query structure and collects one
// killGoal per independent dataset target: the original-query dataset,
// one nullification per equivalence-class element (Algorithm 2), one per
// (non-equi predicate, occurrence) pair (Algorithm 3), one per
// (predicate, comparison-operator variant) (§V-E), and one per aggregate
// call (Algorithm 4, including its internal relaxation ladder). Goals
// share nothing but the read-only Generator, so phase 2 solves them on a
// worker pool (Options.Parallelism workers) with a fresh problem/solver
// per goal.
//
// Phase 2 is budgeted, cancellable and fault-isolated (see
// Generator.GenerateContext): each goal runs under a per-goal context
// (Options.GoalTimeout), with an escalating node-limit retry ladder
// (Options.GoalNodeLimit: 1x, 4x, 16x, plus an unfolded-mode fallback
// when Unfold is off) and a per-worker recover() that converts panics
// into *GoalError values. Abandoned goals become Suite.Incomplete
// entries instead of failing the run.
//
// Determinism contract: each goal writes into its own private Suite;
// results are merged in goal-enumeration order after all workers finish.
// Datasets, Skipped, Incomplete and all integer Stats counters are
// therefore byte-identical for every worker count (the constraint solver
// itself is deterministic per problem — fixed restart seed, no
// wall-clock heuristics under default options; wall-clock budgets
// (GoalTimeout, SolverTimeout) and cancellation trade this determinism
// for boundedness, exactly as documented on the options). Only the
// timing fields (Stats.SolveTime, Stats.TotalTime) vary between runs,
// exactly as they already did sequentially.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/solver"
)

// killGoal is one independently-solvable dataset target.
type killGoal struct {
	// purpose is a diagnostic label for the goal (the generated
	// dataset's own purpose string is produced by run).
	purpose string
	// run solves the goal, appending datasets, skips and stats to the
	// private sub-suite. It must not touch shared mutable state.
	run func(g *Generator, gb *goalBudget, sub *Suite) error
}

// goalBudget threads one attempt's runtime budget — the cancellation
// context plus the attempt's solver node limit and unfold override —
// from the worker pool down to problem.solve, without mutating the
// shared Generator options (goals solve concurrently).
type goalBudget struct {
	ctx context.Context
	// nodeLimit, when positive, bounds solver search nodes per solve
	// call of this attempt (tightened by Options.SolverNodeLimit when
	// that is lower).
	nodeLimit int64
	// unfold, when non-nil, overrides Options.Unfold for this attempt
	// (the quantified-mode fallback flips to unfolded solving).
	unfold *bool
	// solverPar is the intra-goal solver worker share granted to this
	// attempt's solves (Options.SolverParallelism clamped against the
	// goal-level worker count; see solverParallelism). <= 1 keeps the
	// solves sequential.
	solverPar int
}

// backgroundBudget is the no-budget, no-cancellation default used by the
// exported per-phase methods (GenerateOriginal, KillEquivalenceClasses,
// ...), which predate the budgeted pipeline and keep their contracts.
func backgroundBudget() *goalBudget { return &goalBudget{ctx: context.Background()} }

// enumerateGoals collects the full kill-goal list in the canonical
// (sequential Algorithm 1) order: original dataset, equivalence-class
// nullifications, non-equi predicate nullifications, comparison-operator
// variants, aggregate mutations.
func (g *Generator) enumerateGoals() []killGoal {
	goals := []killGoal{{
		purpose: "original-query dataset",
		run: func(g *Generator, gb *goalBudget, sub *Suite) error {
			ds, err := g.generateOriginal(gb, sub)
			if err != nil {
				return err
			}
			sub.Original = ds
			return nil
		},
	}}
	goals = append(goals, g.equivalenceClassGoals()...)
	goals = append(goals, g.otherPredicateGoals()...)
	goals = append(goals, g.comparisonOperatorGoals()...)
	goals = append(goals, g.aggregateGoals()...)
	goals = append(goals, g.subqueryGoals()...)
	goals = append(goals, g.havingGoals()...)
	goals = append(goals, g.likeGoals()...)
	return goals
}

// runGoalsInto executes goals sequentially against a shared suite with
// no budget; the per-phase exported methods (KillEquivalenceClasses
// etc.) use it so their append-in-place, fail-fast contract is
// unchanged.
func runGoalsInto(g *Generator, suite *Suite, goals []killGoal) error {
	gb := backgroundBudget()
	for _, goal := range goals {
		if err := goal.run(g, gb, suite); err != nil {
			return err
		}
	}
	return nil
}

// goalAttempt is one rung of the escalating-retry ladder.
type goalAttempt struct {
	nodeLimit int64
	unfold    *bool
}

// goalAttempts builds the retry ladder from the generator options. With
// no per-goal node budget there is a single attempt under the plain
// options (a budget-exhausted solve is then recorded, not retried: the
// caller chose the per-call budget deliberately, e.g. randql's soak).
func (g *Generator) goalAttempts() []goalAttempt {
	l := g.opts.GoalNodeLimit
	if l <= 0 {
		return []goalAttempt{{}}
	}
	ladder := []goalAttempt{{nodeLimit: l}, {nodeLimit: 4 * l}, {nodeLimit: 16 * l}}
	if !g.opts.Unfold {
		// Fallback strategy: the paper's own ablation (§VI-B) shows
		// unfolding is dramatically cheaper, so a quantified-mode goal
		// that exhausts the ladder gets one last unfolded attempt.
		t := true
		ladder = append(ladder, goalAttempt{nodeLimit: 16 * l, unfold: &t})
	}
	return ladder
}

// solverParallelism resolves the intra-goal solver worker share for a
// run using goalWorkers goal-level workers: Options.SolverParallelism
// clamped so the product of the two levels never oversubscribes the
// Options.Parallelism budget (each of G concurrent goals gets at most
// max(1, budget/G) intra-goal workers).
func (g *Generator) solverParallelism(goalWorkers int) int {
	sp := g.opts.SolverParallelism
	if sp <= 1 {
		return 1
	}
	budget := g.opts.Parallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if goalWorkers < 1 {
		goalWorkers = 1
	}
	if share := budget / goalWorkers; sp > share {
		sp = share
	}
	if sp < 1 {
		sp = 1
	}
	return sp
}

// runGoal executes one kill goal under the robustness envelope:
// per-goal timeout, escalating node-limit retries, and panic recovery.
// It returns the goal's sub-suite — which, for an abandoned goal, holds
// exactly one Incomplete entry plus the stats of the failed attempts —
// and a non-nil error only for hard (fatal) failures. solverPar is the
// attempt's intra-goal solver worker share (see solverParallelism).
func (g *Generator) runGoal(ctx context.Context, goal killGoal, solverPar int) (*Suite, error) {
	gctx := ctx
	if g.opts.GoalTimeout > 0 {
		var cancel context.CancelFunc
		gctx, cancel = context.WithTimeout(ctx, g.opts.GoalTimeout)
		defer cancel()
	}
	attempts := g.goalAttempts()
	start := time.Now()
	var acc Stats // stats of failed attempts, folded into the result
	var lastErr error
	made := 0
	for ai, at := range attempts {
		made = ai + 1
		sub := &Suite{}
		err := g.runGoalAttempt(gctx, at, goal, sub, solverPar)
		if err == nil {
			sub.Stats = addStats(acc, sub.Stats)
			// Absolute, not +=: acc already carries the running count from
			// the failed attempts.
			sub.Stats.RetryCount = made - 1
			return sub, nil
		}
		acc = addStats(acc, sub.Stats)
		acc.RetryCount = made - 1
		lastErr = err

		var gerr *GoalError
		switch {
		case errors.As(err, &gerr):
			// Panics are assumed deterministic: isolate, don't retry.
			acc.PanicCount++
			return g.abandonGoal(goal, ReasonPanic, made, start, acc, err), nil
		case errors.Is(err, solver.ErrCanceled):
			if ctx.Err() != nil {
				// The caller's context (not the per-goal deadline) is
				// done: the whole run is being canceled.
				return g.abandonGoal(goal, ReasonCanceled, made, start, acc, err), nil
			}
			// Per-goal deadline expired: a budget, not a cancellation.
			acc.LimitCount++
			return g.abandonGoal(goal, ReasonBudget, made, start, acc, err), nil
		case errors.Is(err, solver.ErrLimit):
			if ai+1 < len(attempts) && gctx.Err() == nil {
				continue // escalate and retry
			}
			acc.LimitCount++
			return g.abandonGoal(goal, ReasonBudget, made, start, acc, err), nil
		default:
			return nil, err // hard error: fatal
		}
	}
	// Unreachable: every ladder exit returns above.
	return nil, fmt.Errorf("core: goal %q: %w", goal.purpose, lastErr)
}

// abandonGoal builds the sub-suite recording an abandoned goal and
// fires Options.FailureHook with the failure, so capture sinks (the
// daemon's and CLI's repro-bundle writers) see the evidence the moment
// it exists — not only if the caller inspects Suite.Incomplete later.
func (g *Generator) abandonGoal(goal killGoal, reason string, attempts int, start time.Time, acc Stats, err error) *Suite {
	f := Failure{
		Purpose:  goal.purpose,
		Reason:   reason,
		Attempts: attempts,
		Nodes:    acc.SolverNodes,
		Elapsed:  time.Since(start),
		Err:      err,
	}
	if g.opts.FailureHook != nil {
		g.opts.FailureHook(f)
	}
	return &Suite{
		Stats:      acc,
		Incomplete: []Failure{f},
	}
}

// runGoalAttempt runs one attempt of a goal with panic isolation: a
// panic anywhere in constraint generation, solving or extraction is
// recovered into a *GoalError carrying the goal's purpose and the
// panicking stack.
func (g *Generator) runGoalAttempt(ctx context.Context, at goalAttempt, goal killGoal, sub *Suite, solverPar int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &GoalError{Purpose: goal.purpose, Value: r, Stack: debug.Stack()}
		}
	}()
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("%w: %w", solver.ErrCanceled, cerr)
	}
	gb := &goalBudget{ctx: ctx, nodeLimit: at.nodeLimit, unfold: at.unfold, solverPar: solverPar}
	return goal.run(g, gb, sub)
}

// runGoals solves all goals, concurrently when Options.Parallelism (or
// GOMAXPROCS) allows, and returns the per-goal sub-suites in goal order.
// Budget exhaustion, panics and cancellation are absorbed into the
// sub-suites (see runGoal); only hard errors propagate.
func (g *Generator) runGoals(ctx context.Context, goals []killGoal) ([]*Suite, error) {
	workers := g.opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(goals) {
		workers = len(goals)
	}
	subs := make([]*Suite, len(goals))
	solverPar := g.solverParallelism(workers)

	if workers <= 1 {
		for i := range goals {
			sub, err := g.runGoal(ctx, goals[i], solverPar)
			if err != nil {
				return nil, err
			}
			subs[i] = sub
		}
		return subs, nil
	}

	errs := make([]error, len(goals))
	var next int64 = -1
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(goals) || failed.Load() {
					return
				}
				sub, err := g.runGoal(ctx, goals[i], solverPar)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				subs[i] = sub
			}
		}()
	}
	wg.Wait()
	// Report the first error in goal order so failures are deterministic
	// too.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return subs, nil
}

// addStats sums two stats records field-by-field (timing included; the
// timing fields are additive across attempts of one goal).
func addStats(a, b Stats) Stats {
	return Stats{
		SolverCalls:       a.SolverCalls + b.SolverCalls,
		SatCount:          a.SatCount + b.SatCount,
		UnsatCount:        a.UnsatCount + b.UnsatCount,
		SolveTime:         a.SolveTime + b.SolveTime,
		TotalTime:         a.TotalTime + b.TotalTime,
		SolverNodes:       a.SolverNodes + b.SolverNodes,
		SolverRestarts:    a.SolverRestarts + b.SolverRestarts,
		SolverProblemSize: a.SolverProblemSize + b.SolverProblemSize,
		LimitCount:        a.LimitCount + b.LimitCount,
		RetryCount:        a.RetryCount + b.RetryCount,
		PanicCount:        a.PanicCount + b.PanicCount,

		ComponentCount:       a.ComponentCount + b.ComponentCount,
		ComponentCacheHits:   a.ComponentCacheHits + b.ComponentCacheHits,
		SpeculativeRuns:      a.SpeculativeRuns + b.SpeculativeRuns,
		BasePropagationNodes: a.BasePropagationNodes + b.BasePropagationNodes,
	}
}

// mergeInto folds a per-goal sub-suite into the final suite. Called in
// goal-enumeration order, it reproduces the sequential append order
// exactly; Incomplete entries inherit the same deterministic order.
func mergeInto(dst, src *Suite) {
	if src == nil {
		return
	}
	if src.Original != nil {
		dst.Original = src.Original
	}
	dst.Datasets = append(dst.Datasets, src.Datasets...)
	dst.Skipped = append(dst.Skipped, src.Skipped...)
	dst.Incomplete = append(dst.Incomplete, src.Incomplete...)
	total := dst.Stats.TotalTime // preserved: set once by GenerateContext
	dst.Stats = addStats(dst.Stats, src.Stats)
	dst.Stats.TotalTime = total
}
