// Kill-goal pipeline: Algorithm 1 as a two-phase enumerate/solve system.
//
// Phase 1 (enumeration) walks the query structure and collects one
// killGoal per independent dataset target: the original-query dataset,
// one nullification per equivalence-class element (Algorithm 2), one per
// (non-equi predicate, occurrence) pair (Algorithm 3), one per
// (predicate, comparison-operator variant) (§V-E), and one per aggregate
// call (Algorithm 4, including its internal relaxation ladder). Goals
// share nothing but the read-only Generator, so phase 2 solves them on a
// worker pool (Options.Parallelism workers) with a fresh problem/solver
// per goal.
//
// Determinism contract: each goal writes into its own private Suite;
// results are merged in goal-enumeration order after all workers finish.
// Datasets, Skipped and all integer Stats counters are therefore
// byte-identical for every worker count (the constraint solver itself is
// deterministic per problem — fixed restart seed, no wall-clock
// heuristics under default options). Only the timing fields
// (Stats.SolveTime, Stats.TotalTime) vary between runs, exactly as they
// already did sequentially.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// killGoal is one independently-solvable dataset target.
type killGoal struct {
	// purpose is a diagnostic label for the goal (the generated
	// dataset's own purpose string is produced by run).
	purpose string
	// run solves the goal, appending datasets, skips and stats to the
	// private sub-suite. It must not touch shared mutable state.
	run func(g *Generator, sub *Suite) error
}

// enumerateGoals collects the full kill-goal list in the canonical
// (sequential Algorithm 1) order: original dataset, equivalence-class
// nullifications, non-equi predicate nullifications, comparison-operator
// variants, aggregate mutations.
func (g *Generator) enumerateGoals() []killGoal {
	goals := []killGoal{{
		purpose: "original-query dataset",
		run: func(g *Generator, sub *Suite) error {
			ds, err := g.GenerateOriginal(sub)
			if err != nil {
				return err
			}
			sub.Original = ds
			return nil
		},
	}}
	goals = append(goals, g.equivalenceClassGoals()...)
	goals = append(goals, g.otherPredicateGoals()...)
	goals = append(goals, g.comparisonOperatorGoals()...)
	goals = append(goals, g.aggregateGoals()...)
	return goals
}

// runGoalsInto executes goals sequentially against a shared suite; the
// per-phase exported methods (KillEquivalenceClasses etc.) use it so
// their append-in-place contract is unchanged.
func runGoalsInto(g *Generator, suite *Suite, goals []killGoal) error {
	for _, goal := range goals {
		if err := goal.run(g, suite); err != nil {
			return err
		}
	}
	return nil
}

// runGoals solves all goals, concurrently when Options.Parallelism (or
// GOMAXPROCS) allows, and returns the per-goal sub-suites in goal order.
func (g *Generator) runGoals(goals []killGoal) ([]*Suite, error) {
	workers := g.opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(goals) {
		workers = len(goals)
	}
	subs := make([]*Suite, len(goals))

	if workers <= 1 {
		for i := range goals {
			sub := &Suite{}
			if err := goals[i].run(g, sub); err != nil {
				return nil, err
			}
			subs[i] = sub
		}
		return subs, nil
	}

	errs := make([]error, len(goals))
	var next int64 = -1
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(goals) || failed.Load() {
					return
				}
				sub := &Suite{}
				if err := goals[i].run(g, sub); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				subs[i] = sub
			}
		}()
	}
	wg.Wait()
	// Report the first error in goal order so failures are deterministic
	// too.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return subs, nil
}

// mergeInto folds a per-goal sub-suite into the final suite. Called in
// goal-enumeration order, it reproduces the sequential append order
// exactly.
func mergeInto(dst, src *Suite) {
	if src == nil {
		return
	}
	if src.Original != nil {
		dst.Original = src.Original
	}
	dst.Datasets = append(dst.Datasets, src.Datasets...)
	dst.Skipped = append(dst.Skipped, src.Skipped...)
	dst.Stats.SolverCalls += src.Stats.SolverCalls
	dst.Stats.SatCount += src.Stats.SatCount
	dst.Stats.UnsatCount += src.Stats.UnsatCount
	dst.Stats.SolveTime += src.Stats.SolveTime
	dst.Stats.SolverNodes += src.Stats.SolverNodes
	dst.Stats.SolverRestarts += src.Stats.SolverRestarts
	dst.Stats.SolverProblemSize += src.Stats.SolverProblemSize
}
