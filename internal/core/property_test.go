package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/mutation"
	"repro/internal/qtree"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// TestPipelinePropertySeeded is the repository's headline property test:
// for randomized in-class workloads (random chain schemas with random
// foreign keys, random join/selection/aggregation queries), the generated
// suite must consist of legal datasets, give the original query a
// non-empty result, and leave no non-equivalent mutant unkilled
// (Theorem 1, checked by randomized equivalence testing).
func TestPipelinePropertySeeded(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		nRel := 2 + rng.Intn(3)
		var ddl strings.Builder
		for i := 0; i < nRel; i++ {
			fmt.Fprintf(&ddl, "CREATE TABLE r%d (k INT PRIMARY KEY, v INT NOT NULL, s VARCHAR(10) NOT NULL", i)
			if i+1 < nRel && rng.Intn(2) == 0 {
				fmt.Fprintf(&ddl, ", FOREIGN KEY (k) REFERENCES r%d(k)", i+1)
			}
			ddl.WriteString(");\n")
		}
		var conds []string
		for i := 0; i+1 < nRel; i++ {
			attr := []string{"k", "v"}[rng.Intn(2)]
			conds = append(conds, fmt.Sprintf("a%d.%s = a%d.k", i, attr, i+1))
		}
		if rng.Intn(2) == 0 {
			conds = append(conds, fmt.Sprintf("a0.v %s %d", []string{">", "<", "=", ">=", "<=", "<>"}[rng.Intn(6)], rng.Intn(5)))
		}
		var from []string
		for i := 0; i < nRel; i++ {
			from = append(from, fmt.Sprintf("r%d a%d", i, i))
		}
		sel, groupBy := "*", ""
		if rng.Intn(3) == 0 {
			agg := []string{"SUM(a0.v)", "COUNT(a0.v)", "MIN(a0.v)", "MAX(a0.v)", "AVG(a0.v)", "SUM(DISTINCT a0.v)"}[rng.Intn(6)]
			sel = "a0.s, " + agg
			groupBy = " GROUP BY a0.s"
		}
		sql := fmt.Sprintf("SELECT %s FROM %s", sel, strings.Join(from, ", "))
		if len(conds) > 0 {
			sql += " WHERE " + strings.Join(conds, " AND ")
		}
		sql += groupBy

		sch, err := sqlparser.ParseSchema(ddl.String())
		if err != nil {
			t.Fatalf("trial %d: schema: %v\n%s", trial, err, ddl.String())
		}
		q, err := qtree.BuildSQL(sch, sql)
		if err != nil {
			t.Fatalf("trial %d: query: %v\n%s", trial, err, sql)
		}
		suite, err := NewGenerator(q, DefaultOptions()).Generate()
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, sql, err)
		}

		// Invariant 1: every dataset is a legal database instance.
		for _, ds := range suite.All() {
			if err := sch.CheckDataset(ds); err != nil {
				t.Fatalf("trial %d (%s): invalid dataset %q: %v", trial, sql, ds.Purpose, err)
			}
		}
		// Invariant 2: the original-query dataset yields rows.
		res, err := engine.NewPlan(q).Run(suite.Original)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("trial %d (%s): empty result on original dataset", trial, sql)
		}
		// Invariant 3 (Theorem 1): surviving mutants are equivalent.
		ms, err := mutation.Space(q, mutation.DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep, err := mutation.Evaluate(q, ms, suite.All())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		chk := mutation.NewEquivalenceChecker(int64(trial))
		chk.Trials = 60
		for _, mi := range rep.Survivors() {
			equiv, witness, err := chk.Check(q, ms[mi])
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !equiv {
				t.Errorf("trial %d (%s): non-equivalent survivor %q\nwitness:\n%s",
					trial, sql, ms[mi].Desc, witness)
			}
		}
	}
}

// Quick property: dataset extraction decode/encode round-trips for every
// value kind the generator produces.
func TestValueCodecProperty(t *testing.T) {
	sch, err := sqlparser.ParseSchema("CREATE TABLE t (a INT, b VARCHAR(5))")
	if err != nil {
		t.Fatal(err)
	}
	q, err := qtree.BuildSQL(sch, "SELECT * FROM t WHERE t.a > 0")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(q, DefaultOptions())
	f := func(v int32) bool {
		code, ok := g.encodeValue(sqltypes.NewInt(int64(v)))
		if !ok || code != int64(v) {
			return false
		}
		return g.decodeValue(sqltypes.KindInt, code).Int() == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Strings round-trip through the pool.
	for _, s := range g.strPool.vals {
		code, ok := g.encodeValue(sqltypes.NewString(s))
		if !ok || g.decodeValue(sqltypes.KindString, code).Str() != s {
			t.Errorf("string %q does not round-trip", s)
		}
	}
}
