package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/solver"
)

// TestFailureHookFiresOnAbandonedGoals: Options.FailureHook receives
// exactly the failures that land in Suite.Incomplete, with the same
// purposes and reasons, even under concurrent goal workers — the
// contract the daemon's repro-bundle capture relies on.
func TestFailureHookFiresOnAbandonedGoals(t *testing.T) {
	q := buildQuery(t, ddlNoFK, robustSQL)

	defer solver.SetFaultHook(nil)
	solver.SetFaultHook(func(label string, call int64) solver.Fault {
		switch {
		case strings.Contains(label, panicLabelPat):
			return solver.FaultPanic
		case strings.Contains(label, limitLabelPat):
			return solver.FaultLimit
		}
		return solver.FaultNone
	})

	var mu sync.Mutex
	var hooked []Failure
	opts := DefaultOptions()
	opts.Parallelism = 4
	opts.FailureHook = func(f Failure) {
		mu.Lock()
		defer mu.Unlock()
		hooked = append(hooked, f)
	}

	suite, err := NewGenerator(q, opts).GenerateContext(context.Background())
	if !errors.Is(err, ErrPartialSuite) {
		t.Fatalf("got error %v, want ErrPartialSuite", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(hooked) != len(suite.Incomplete) {
		t.Fatalf("hook fired %d times for %d incomplete goals", len(hooked), len(suite.Incomplete))
	}
	seen := map[string]string{}
	for _, f := range hooked {
		seen[f.Purpose] = f.Reason
		if f.Err == nil {
			t.Errorf("hooked failure %q carries no error", f.Purpose)
		}
	}
	for _, f := range suite.Incomplete {
		if seen[f.Purpose] != f.Reason {
			t.Errorf("hook saw (%q, %q), suite recorded reason %q", f.Purpose, seen[f.Purpose], f.Reason)
		}
	}
	if seen[panicPurpose] != ReasonPanic || seen[limitPurpose] != ReasonBudget {
		t.Fatalf("hooked failures = %v, want panic + budget entries", seen)
	}
}

// TestFailureHookSilentOnCompleteSuite: no abandoned goals, no calls.
func TestFailureHookSilentOnCompleteSuite(t *testing.T) {
	q := buildQuery(t, ddlNoFK, robustSQL)
	opts := DefaultOptions()
	calls := 0
	opts.FailureHook = func(Failure) { calls++ }
	opts.Parallelism = 1
	if _, err := NewGenerator(q, opts).GenerateContext(context.Background()); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if calls != 0 {
		t.Fatalf("FailureHook fired %d times on a complete suite", calls)
	}
}
