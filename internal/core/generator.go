package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/qtree"
	"repro/internal/schema"
	"repro/internal/solver"
	"repro/internal/sqltypes"
)

// Options configure dataset generation.
type Options struct {
	// Unfold expands bounded quantifiers before solving (§VI-B). The
	// paper's experiments show this is dramatically faster; it is the
	// default.
	Unfold bool
	// SolverNodeLimit bounds solver search nodes (0 = solver default).
	SolverNodeLimit int64
	// SolverTimeout bounds each solver call (0 = none).
	SolverTimeout time.Duration
	// InputDB, when set, seeds attribute domains with values from an
	// existing database so generated datasets look familiar (§VI-A).
	InputDB *schema.Dataset
	// ForceInputTuples additionally constrains every generated tuple to
	// equal some tuple of InputDB (§VI-A). When the constraints become
	// inconsistent the generator retries without them, as the paper
	// describes.
	ForceInputTuples bool
	// FreshValues is the number of synthetic domain values beyond the
	// query constants (default 8). More values give the solver slack at
	// the cost of search space.
	FreshValues int
	// NoJointNullify disables Algorithm 2's joint nullification of a
	// class element together with its referencing foreign keys. FOR
	// ABLATION ONLY: without it, datasets for queries like
	// (C LOJ A) JOIN B with A.x referencing B.x are skipped as
	// unsatisfiable and the corresponding mutants survive unkilled.
	NoJointNullify bool
	// Parallelism is the number of worker goroutines solving kill goals
	// concurrently (see goals.go). <= 0 selects runtime.GOMAXPROCS(0);
	// 1 forces fully sequential generation. The generated Suite is
	// byte-identical for every value: goals are enumerated up front and
	// their results merged in enumeration order.
	Parallelism int
	// GoalTimeout bounds the total wall time spent on one kill goal
	// across all of its solver calls and retry attempts (0 = none).
	// When it expires the goal is recorded in Suite.Incomplete and
	// generation continues with the remaining goals.
	GoalTimeout time.Duration
	// MaxDomainSize, when positive, caps the width of the generator's
	// candidate-value pools (the integer pool built from query
	// constants, boundaries, sums/differences, arithmetic-offset
	// closure and input-database values; and the string pool). A pool
	// over the ceiling aborts generation with an error wrapping
	// limits.ErrResourceLimit before any solving starts: solver work
	// grows superlinearly in domain width, so this is the resource-
	// governance backstop against adversarial constant sets and huge
	// input databases. 0 = uncapped (the library default).
	MaxDomainSize int
	// SolverParallelism is the number of intra-goal solver workers each
	// kill-goal solve may use: component-parallel search in the kernel
	// path (solver.Options.Parallel) and speculative parallel restarts
	// in the legacy paths (solver.Options.Speculate). <= 1 keeps every
	// solve fully sequential (the default). The combined budget is
	// clamped so goal-level workers times intra-goal workers never
	// exceeds Parallelism: with G goals solving concurrently each solve
	// gets at most max(1, Parallelism/G) intra-goal workers. The
	// generated Suite is byte-identical for every value; aggregate
	// SolverNodes additionally stays invariant except under speculative
	// restarts (see Stats.SpeculativeRuns).
	SolverParallelism int
	// GoalNodeLimit, when positive, bounds solver search nodes per
	// solver call of a kill goal's first attempt and arms the
	// escalating-retry ladder: a goal whose solve exhausts the budget is
	// retried with the limit grown 4x per attempt (3 attempts: 1x, 4x,
	// 16x), plus — when Unfold is off — one final fallback attempt in
	// unfolded mode, the strategy the paper shows to be dramatically
	// cheaper. If every attempt exhausts its budget the goal lands in
	// Suite.Incomplete instead of failing the run. SolverNodeLimit, when
	// also set, remains a hard per-call ceiling.
	GoalNodeLimit int64

	// The four No* flags below disable individual solver-microarchitecture
	// optimizations FOR ABLATION AND DEBUGGING ONLY; the zero value (all
	// optimizations on) is the supported configuration. They only matter
	// in unfolded mode — quantified solves always take the legacy path.

	// NoSolverHeuristics disables the bitset search kernel's MRV+degree
	// variable ordering and least-constraining-value ordering
	// (solver.Options.Heuristics).
	NoSolverHeuristics bool
	// NoDecompose disables constraint-graph component decomposition
	// (solver.Options.Decompose) and, with it, the component cache.
	NoDecompose bool
	// NoSharedCore disables the shared pre-propagated database-constraint
	// core (solver.PrepareBase): every kill goal then re-asserts and
	// re-propagates the PK/FK/domain constraints from scratch.
	NoSharedCore bool
	// NoComponentCache disables memoizing solved components across kill
	// goals (solver.Options.Cache) while keeping decomposition itself.
	NoComponentCache bool
	// NoComponentParallel disables intra-goal component-parallel search
	// (solver.Options.Parallel) while leaving SolverParallelism to feed
	// speculative restarts in the legacy paths.
	NoComponentParallel bool
	// NoSpeculative disables speculative parallel restarts
	// (solver.Options.Speculate) while leaving SolverParallelism to feed
	// component-parallel kernel search.
	NoSpeculative bool

	// FailureHook, when set, is called once for each kill goal the
	// generator abandons (budget exhaustion, recovered panic,
	// cancellation), with the same Failure that lands in
	// Suite.Incomplete — the capture point for failure repro bundles,
	// which must be written even when the process dies before the
	// partial Suite is inspected. Goals solve concurrently, so the hook
	// must be safe for concurrent use and should return quickly. It
	// never influences generated bytes and is excluded from content
	// keys (fleet.ContentKey) and option validation.
	FailureHook func(Failure) `json:"-"`
}

// DefaultOptions returns the paper's default configuration.
func DefaultOptions() Options { return Options{Unfold: true} }

// Stats aggregates measurements over one generation run; the benchmark
// harness uses them to regenerate the paper's timing columns.
type Stats struct {
	SolverCalls int
	SatCount    int
	UnsatCount  int
	SolveTime   time.Duration // time inside the constraint solver
	TotalTime   time.Duration // constraint generation + solving
	// SolverNodes and SolverRestarts measure solver work (search nodes,
	// lazy-instantiation restarts): the implementation-independent view
	// of the paper's unfolding ablation.
	SolverNodes    int64
	SolverRestarts int64
	// SolverProblemSize sums constraint counts and candidate-domain
	// cardinalities across all solver calls: a deterministic proxy for
	// problem size (e.g. it grows with the input database in the
	// §VI-C.3 experiment, where search nodes can shrink as the extra
	// constraints improve propagation).
	SolverProblemSize int64
	// LimitCount counts kill goals abandoned after exhausting their
	// node/time budget (every such goal has a Suite.Incomplete entry).
	LimitCount int
	// RetryCount counts escalating retry attempts performed after a
	// budget-exhausted solve, whether or not the goal eventually
	// succeeded.
	RetryCount int
	// PanicCount counts kill-goal panics recovered into
	// Suite.Incomplete entries (fault isolation).
	PanicCount int
	// ComponentCount is the number of connected components the kernel's
	// constraint-graph decomposition produced, summed over all solver
	// calls (0 when Options.NoDecompose or quantified mode).
	ComponentCount int64
	// ComponentCacheHits counts components answered from the
	// per-generator component cache instead of being searched. The
	// total is deterministic (singleflight computes each distinct
	// component exactly once), though which goal pays the search nodes
	// for a shared component depends on worker scheduling — the nodes
	// total stays invariant because a hit costs zero nodes.
	ComponentCacheHits int64
	// SpeculativeRuns counts restart attempts launched by speculative
	// parallel restarts (solver.Options.Speculate), including losers
	// canceled when a sibling won: the honest measure of extra search
	// work speculation burned for its wall-clock win. 0 unless
	// SolverParallelism > 1 on a legacy-path (quantified or
	// no-heuristics/no-decompose) solve.
	SpeculativeRuns int64
	// BasePropagationNodes is the propagation work performed once per
	// shared database-constraint core (solver.PrepareBase fixed points)
	// and reused by every goal attached to it. Counted at build time,
	// once per distinct core, so it measures work actually done — the
	// work *saved* scales with SolverCalls.
	BasePropagationNodes int64
}

// Skip records a dataset that was not generated because its constraints
// are unsatisfiable — which, per the paper, means the targeted mutant
// group is equivalent to the original query.
type Skip struct {
	Purpose string
	Reason  string
}

// Failure reasons recorded in Suite.Incomplete entries.
const (
	// ReasonBudget: the goal exhausted its node/time budget on every
	// attempt (Options.GoalNodeLimit / GoalTimeout / SolverNodeLimit /
	// SolverTimeout).
	ReasonBudget = "node/time budget exhausted"
	// ReasonPanic: the goal's worker panicked; the panic was recovered
	// and isolated to this goal (see Failure.Err, a *GoalError carrying
	// the stack).
	ReasonPanic = "panic (recovered)"
	// ReasonCanceled: the surrounding context was canceled before or
	// while the goal ran.
	ReasonCanceled = "canceled"
)

// Failure records a kill goal the generator had to abandon — budget
// exhaustion, a recovered panic, or cancellation — instead of failing
// the whole run. The mutants the goal targeted may survive the partial
// suite; everything else is unaffected.
type Failure struct {
	// Purpose is the goal's diagnostic label.
	Purpose string
	// Reason is one of the Reason* constants.
	Reason string
	// Attempts is how many solve attempts were made (>1 when the
	// escalating-retry ladder ran).
	Attempts int
	// Nodes is the total solver search nodes spent across attempts.
	Nodes int64
	// Elapsed is the wall time spent on the goal across attempts.
	Elapsed time.Duration
	// Err is the final underlying error: a wrapped solver.ErrLimit, a
	// *GoalError (panic), or a wrapped solver.ErrCanceled.
	Err error
}

func (f Failure) String() string {
	return fmt.Sprintf("%s: %s after %d attempt(s), %d nodes, %v", f.Purpose, f.Reason, f.Attempts, f.Nodes, f.Elapsed.Round(time.Millisecond))
}

// GoalError is a kill-goal panic converted into an error by the worker
// pool's recovery handler: fault isolation turns one crashing goal into
// one Suite.Incomplete entry instead of a crashed process.
type GoalError struct {
	// Purpose is the goal whose worker panicked.
	Purpose string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *GoalError) Error() string {
	return fmt.Sprintf("core: kill goal %q panicked: %v", e.Purpose, e.Value)
}

// ErrPartialSuite is returned (wrapped) by Generate when at least one
// kill goal was abandoned: the Suite is still valid and usable — every
// dataset in it is correct and deterministic — but the goals listed in
// Suite.Incomplete produced no dataset, so their targeted mutants may
// survive. Callers distinguish full from degraded completeness with
// errors.Is(err, ErrPartialSuite).
var ErrPartialSuite = errors.New("core: partial suite: some kill goals incomplete")

// Suite is a generated test suite: the dataset exercising the original
// query plus one dataset per killable mutant group.
type Suite struct {
	Original *schema.Dataset
	Datasets []*schema.Dataset
	Skipped  []Skip
	// Incomplete lists kill goals abandoned on budget exhaustion,
	// recovered panic, or cancellation, in goal-enumeration order. When
	// non-empty, Generate returned ErrPartialSuite.
	Incomplete []Failure
	Stats      Stats
}

// All returns the original dataset followed by the kill datasets.
func (s *Suite) All() []*schema.Dataset {
	out := make([]*schema.Dataset, 0, len(s.Datasets)+1)
	if s.Original != nil {
		out = append(out, s.Original)
	}
	return append(out, s.Datasets...)
}

// Generator produces test suites for one query.
type Generator struct {
	q    *qtree.Query
	opts Options

	intPool []int64
	strPool *stringPool

	// Solver-microarchitecture caches shared by every kill goal of this
	// generator (and across Generate calls — a warm generator solves
	// faster and reports lower work counters, but produces byte-identical
	// suites). mu guards the two lazy maps; the component cache has its
	// own internal synchronization. See problem.go for the layout/base
	// construction.
	mu      sync.Mutex
	layouts map[layoutKey]*problemLayout
	bases   map[baseKey]*solver.Base
	comp    *solver.ComponentCache
	// arenas recycles per-solve solver allocations (solver.Arena):
	// problem.solve checks one out per solver call and returns it
	// afterwards, so each in-flight solve holds its own arena (arenas
	// are not concurrency-safe) while a steady-state goal stream reuses
	// a handful of warmed ones instead of reallocating per solve. A
	// generator-owned free list (guarded by arenaMu) rather than a
	// sync.Pool: the workload's GC cadence would evict pooled arenas
	// every couple of solves, re-paying the warm-up allocations the
	// arena exists to amortize.
	arenaMu sync.Mutex
	arenas  []*solver.Arena
}

// getArena checks a warmed arena out of the generator's free list (or
// returns a fresh one); putArena returns it. At most Parallelism solves
// are in flight, so the list stays that small.
func (g *Generator) getArena() *solver.Arena {
	g.arenaMu.Lock()
	defer g.arenaMu.Unlock()
	if n := len(g.arenas); n > 0 {
		a := g.arenas[n-1]
		g.arenas = g.arenas[:n-1]
		return a
	}
	return &solver.Arena{}
}

func (g *Generator) putArena(a *solver.Arena) {
	g.arenaMu.Lock()
	defer g.arenaMu.Unlock()
	g.arenas = append(g.arenas, a)
}

// NewGenerator prepares a generator, building the interesting-value
// domains for the query: all constants appearing in predicates, ±1
// boundary neighbours, pairwise sums and differences (for arithmetic
// join conditions), input-database values when provided, and a band of
// fresh values. For the paper's query class these domains suffice to
// find a model whenever one exists over the integers (small-model
// property of conjunctions of linear comparisons).
func NewGenerator(q *qtree.Query, opts Options) *Generator {
	// Only the zero value selects the default: a negative count is a
	// caller bug, preserved here so Options.Validate (run by Generate/
	// GenerateContext) can reject it with ErrBadOptions.
	if opts.FreshValues == 0 {
		opts.FreshValues = 8
	}
	g := &Generator{q: q, opts: opts}

	intSet := map[int64]bool{}
	strSet := map[string]bool{}
	var consts, arithOffsets []int64
	collectPred := func(p *qtree.Pred) {
		if p.Like != nil {
			// The pattern itself plus matching witnesses (wildcards
			// expanded several ways) for the original pattern and each of
			// its mutation-space variants, so the finite string domain can
			// separate every pattern pair.
			seedLikeWitnesses(strSet, p.Like.Pattern)
			for _, v := range likePatternVariants(p.Like.Pattern) {
				seedLikeWitnesses(strSet, v.pat)
			}
			collectScalarConsts(p.L, &consts, &arithOffsets, strSet)
			return
		}
		for _, s := range []*qtree.Scalar{p.L, p.R} {
			collectScalarConsts(s, &consts, &arithOffsets, strSet)
		}
	}
	for _, p := range q.Preds {
		collectPred(p)
	}
	for _, sub := range q.Subs {
		for _, p := range sub.Preds {
			collectPred(p)
		}
		if sub.Outer != nil {
			collectScalarConsts(sub.Outer, &consts, &arithOffsets, strSet)
		}
	}
	if q.Agg != nil {
		for _, h := range q.Agg.Having {
			switch h.Rhs.Kind() {
			case sqltypes.KindInt:
				consts = append(consts, h.Rhs.Int())
			case sqltypes.KindString:
				strSet[h.Rhs.Str()] = true
			}
		}
	}
	for _, c := range consts {
		intSet[c-1] = true
		intSet[c] = true
		intSet[c+1] = true
	}
	for _, a := range consts {
		for _, b := range consts {
			intSet[a+b] = true
			intSet[a-b] = true
		}
	}
	for i := 0; i < opts.FreshValues; i++ {
		intSet[int64(i)] = true
	}
	// Close the pool under the arithmetic offsets appearing inside
	// SArith scalars (join conditions like a.x + k = b.y). A comparison
	// constant c admits boundary values c±1; if the query then chains
	// that boundary through an arithmetic join, the partner column
	// needs (c±1)±k — two hops from any collected constant, which the
	// one-level sums/differences above miss. Without this round the
	// finite domain wrongly declares such queries UNSAT and comparison
	// kills are silently skipped (found by randql seed 10518:
	// t2_id > 6 AND t0_id = t2_id + 1 needs 8 = (6+1)+1 in the pool).
	if len(arithOffsets) > 0 {
		base := make([]int64, 0, len(intSet))
		for v := range intSet {
			base = append(base, v)
		}
		for _, v := range base {
			for _, k := range arithOffsets {
				intSet[v+k] = true
				intSet[v-k] = true
			}
		}
	}
	if opts.InputDB != nil {
		for _, t := range opts.InputDB.TableNames() {
			for _, row := range opts.InputDB.Rows(t) {
				for _, v := range row {
					switch v.Kind() {
					case sqltypes.KindInt:
						intSet[v.Int()] = true
					case sqltypes.KindString:
						strSet[v.Str()] = true
					case sqltypes.KindFloat:
						intSet[int64(v.Float())] = true
					}
				}
			}
		}
	}
	for v := range intSet {
		g.intPool = append(g.intPool, v)
	}
	sort.Slice(g.intPool, func(i, j int) bool { return g.intPool[i] < g.intPool[j] })

	g.strPool = newStringPool(strSet, opts.FreshValues)
	g.comp = solver.NewComponentCache()
	return g
}

// Query returns the generator's query.
func (g *Generator) Query() *qtree.Query { return g.q }

// collectScalarConsts gathers the integer and string constants of a
// scalar. Integer constants that appear as operands of an arithmetic
// node are additionally recorded in arith: they act as offsets between
// column values, and the value pool must be closed under adding and
// subtracting them (see NewGenerator).
func collectScalarConsts(s *qtree.Scalar, ints, arith *[]int64, strs map[string]bool) {
	switch s.Kind {
	case qtree.SConst:
		switch s.Const.Kind() {
		case sqltypes.KindInt:
			*ints = append(*ints, s.Const.Int())
		case sqltypes.KindFloat:
			*ints = append(*ints, int64(s.Const.Float()))
		case sqltypes.KindString:
			strs[s.Const.Str()] = true
		}
	case qtree.SArith:
		for _, side := range []*qtree.Scalar{s.L, s.R} {
			if side.Kind == qtree.SConst && side.Const.Kind() == sqltypes.KindInt {
				*arith = append(*arith, side.Const.Int())
			}
			collectScalarConsts(side, ints, arith, strs)
		}
	}
}

// domainFor returns the candidate values for an attribute, ordered by
// preference. With an input database, that column's values come first so
// generated data looks familiar (§VI-A). The preference order is rotated
// by the tuple slot's index so sibling tuples of one relation try
// *distinct* values first: equalities demanded by the query are already
// enforced by the solver's union-find merging, while the chase, the
// NOT-EXISTS nullifications and the aggregation constraint sets all want
// distinct tuples — starting them apart avoids deep backtracking.
func (g *Generator) domainFor(rel *schema.Relation, a schema.Attribute, slotIdx int) []int64 {
	return rotateDomain(dedupeDomain(g.baseDomainFor(rel, a)), slotIdx)
}

// baseDomainFor is domainFor before rotation and deduplication: the
// slot-independent preference order. buildLayout computes it (and its
// dedup) once per (relation, attribute) instead of once per slot.
func (g *Generator) baseDomainFor(rel *schema.Relation, a schema.Attribute) []int64 {
	var dom []int64
	if g.opts.InputDB != nil {
		pos := rel.AttrPos(a.Name)
		for _, row := range g.opts.InputDB.Rows(rel.Name) {
			if code, ok := g.encodeValue(row[pos]); ok {
				dom = append(dom, code)
			}
		}
	}
	switch a.Type {
	case sqltypes.KindString:
		dom = append(dom, g.strPool.pref...)
	case sqltypes.KindBool:
		dom = append(dom, 0, 1)
	default:
		dom = append(dom, g.intPool...)
	}
	return dom
}

// dedupeDomain removes duplicates preserving first-occurrence order
// (rotation preserves uniqueness, so this runs once per attribute).
// Small domains — the common case — are checked by quadratic scan and
// returned unchanged (no map, no copy) when already unique; only wide
// domains pay for a seen-map.
func dedupeDomain(dom []int64) []int64 {
	if len(dom) <= 32 {
		var out []int64 // nil while dom is still duplicate-free
		for i, v := range dom {
			dup := false
			for _, w := range dom[:i] {
				if w == v {
					dup = true
					break
				}
			}
			switch {
			case dup && out == nil: // first duplicate: copy the clean prefix
				out = append(make([]int64, 0, len(dom)-1), dom[:i]...)
			case !dup && out != nil:
				out = append(out, v)
			}
		}
		if out == nil {
			return dom
		}
		return out
	}
	seen := make(map[int64]bool, len(dom))
	out := make([]int64, 0, len(dom))
	for _, v := range dom {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// rotateDomain returns dom rotated left by slotIdx (a fresh slice when
// rotation applies; the input otherwise), so sibling tuples of one
// relation try distinct values first — see domainFor.
func rotateDomain(dom []int64, slotIdx int) []int64 {
	if slotIdx <= 0 || len(dom) < 2 {
		return dom
	}
	rot := slotIdx % len(dom)
	rotated := make([]int64, 0, len(dom))
	rotated = append(rotated, dom[rot:]...)
	rotated = append(rotated, dom[:rot]...)
	return rotated
}

// encodeValue maps a SQL value to its solver integer. Strings must be in
// the pool.
func (g *Generator) encodeValue(v sqltypes.Value) (int64, bool) {
	switch v.Kind() {
	case sqltypes.KindInt:
		return v.Int(), true
	case sqltypes.KindFloat:
		return int64(v.Float()), true
	case sqltypes.KindString:
		c, ok := g.strPool.code[v.Str()]
		return c, ok
	case sqltypes.KindBool:
		if v.Bool() {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// decodeValue maps a solver integer back to a SQL value of the column's
// kind.
func (g *Generator) decodeValue(k sqltypes.Kind, code int64) sqltypes.Value {
	switch k {
	case sqltypes.KindString:
		return sqltypes.NewString(g.strPool.decode(code))
	case sqltypes.KindFloat:
		return sqltypes.NewFloat(float64(code))
	case sqltypes.KindBool:
		return sqltypes.NewBool(code != 0)
	default:
		return sqltypes.NewInt(code)
	}
}

// Generate runs the full Algorithm 1: a dataset satisfying the original
// query, then datasets killing join-type mutants (via equivalence classes
// and non-equi join predicates), comparison-operator mutants, and
// aggregation mutants. Unsatisfiable constraint systems are recorded as
// skips: they correspond to equivalent mutants.
//
// Generation runs as a two-phase kill-goal pipeline (see goals.go): the
// independent dataset targets are enumerated first, then solved on a
// worker pool of Options.Parallelism goroutines with per-goal solver
// instances. Results are merged in enumeration order, so the returned
// Suite is identical for every worker count.
func (g *Generator) Generate() (*Suite, error) {
	return g.GenerateContext(context.Background())
}

// GenerateContext is Generate with cooperative cancellation and fault
// isolation. Robustness contract:
//
//   - ctx cancellation propagates into every in-flight solver call
//     (checked every ~1024 search nodes) and returns promptly; goals
//     finished before the cancellation stay in the Suite, the rest are
//     recorded in Suite.Incomplete with ReasonCanceled.
//   - a goal exhausting its budget (Options.GoalNodeLimit with the
//     escalating-retry ladder, Options.GoalTimeout, or the per-call
//     SolverNodeLimit/SolverTimeout) is recorded in Suite.Incomplete
//     with ReasonBudget; generation continues.
//   - a panicking goal worker is recovered, converted into a *GoalError
//     (purpose + stack) and recorded with ReasonPanic; generation
//     continues.
//
// When Suite.Incomplete is non-empty the returned error wraps
// ErrPartialSuite (and the context error, if cancellation caused it);
// the Suite is still returned and safe to use. Hard errors — an
// unsupported query construct, an invalid extracted dataset — remain
// fatal and return a nil suite.
func (g *Generator) GenerateContext(ctx context.Context) (*Suite, error) {
	if err := g.opts.Validate(); err != nil {
		return nil, err
	}
	if err := g.checkDomainCeiling(); err != nil {
		return nil, err
	}
	start := time.Now()
	subs, err := g.runGoals(ctx, g.enumerateGoals())
	if err != nil {
		return nil, err
	}
	suite := &Suite{}
	for _, sub := range subs {
		mergeInto(suite, sub)
	}
	suite.Stats.TotalTime = time.Since(start)
	if len(suite.Incomplete) > 0 {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return suite, fmt.Errorf("%w: %w", ErrPartialSuite, ctxErr)
		}
		return suite, fmt.Errorf("%w (%d of %d goals)", ErrPartialSuite, len(suite.Incomplete), len(subs))
	}
	return suite, nil
}

// buildDataset constructs a problem, applies build, asserts the database
// constraints, and solves. A nil dataset with nil error means UNSAT (an
// equivalent mutant group), which is recorded on the suite.
//
// When the query carries a HAVING clause, the goal's tuple sets alone
// need not survive the group filter — a dataset whose group fails HAVING
// shows nothing at the root, so no mutant is killed. The wrapper bulks
// the group with filler tuple sets that satisfy the full query until the
// statically-checkable HAVING conjuncts can hold, and asserts every
// conjunct over the combined group (assertHavingHolds). Goals that manage
// the HAVING clause themselves call buildDatasetRaw.
func (g *Generator) buildDataset(gb *goalBudget, suite *Suite, purpose string, tupleSets int, needRepair bool, build func(*problem) error) (*schema.Dataset, error) {
	if g.q.Agg == nil || len(g.q.Agg.Having) == 0 {
		return g.buildDatasetRaw(gb, suite, purpose, tupleSets, needRepair, build)
	}
	n := tupleSets
	if need := g.neededHavingSets(); need > n {
		n = need
	}
	return g.buildDatasetRaw(gb, suite, purpose, n, needRepair, func(p *problem) error {
		if err := build(p); err != nil {
			return err
		}
		for set := tupleSets; set < n; set++ {
			if p.fillerConds != nil {
				if err := p.fillerConds(set); err != nil {
					return err
				}
				continue
			}
			if err := p.assertQueryConds(set, nil, nil); err != nil {
				return err
			}
		}
		return p.assertHavingHolds(n)
	})
}

// buildDatasetRaw is buildDataset without the HAVING group augmentation.
func (g *Generator) buildDatasetRaw(gb *goalBudget, suite *Suite, purpose string, tupleSets int, needRepair bool, build func(*problem) error) (*schema.Dataset, error) {
	ds, err := g.tryBuild(gb, suite, purpose, tupleSets, needRepair, g.opts.ForceInputTuples, build)
	if err == nil && ds == nil && g.opts.ForceInputTuples {
		// §VI-A: input-database constraints can be inconsistent with the
		// kill constraints; retry without them.
		return g.tryBuild(gb, suite, purpose+" (input-db constraints relaxed)", tupleSets, needRepair, false, build)
	}
	return ds, err
}

func (g *Generator) tryBuild(gb *goalBudget, suite *Suite, purpose string, tupleSets int, needRepair, forceInput bool, build func(*problem) error) (*schema.Dataset, error) {
	// Fast-fail before constructing the constraint system when the goal
	// (or the whole run) has already been canceled or timed out.
	if err := gb.ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %s: %w (%w)", purpose, solver.ErrCanceled, err)
	}
	p, err := g.newProblem(tupleSets, needRepair)
	if err != nil {
		return nil, err
	}
	// Thread the input-tuple toggle through the problem rather than
	// mutating shared Generator options: goals solve concurrently.
	p.forceInput = forceInput
	if err := build(p); err != nil {
		return nil, fmt.Errorf("core: %s: %w", purpose, err)
	}
	// Shared-core path: when this attempt will run the bitset kernel and
	// the goal did not disable any foreign key (patchNull), attach the
	// pre-propagated database-constraint core instead of re-asserting —
	// and re-flattening, re-compiling, re-propagating — it per goal. The
	// constraints build(p) asserted become the goal's delta.
	if g.useSharedCore(gb, p) {
		b, built, err := g.baseFor(tupleSets, needRepair, forceInput)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", purpose, err)
		}
		if built {
			// Accounted once per distinct core, by whichever goal built
			// it; the suite-level sum is deterministic either way.
			suite.Stats.BasePropagationNodes += b.PropagationNodes()
		}
		p.s.AttachBase(b)
	} else {
		p.assertDBConstraints()
	}

	t0 := time.Now()
	m, err := p.solve(gb, purpose)
	suite.Stats.SolveTime += time.Since(t0)
	suite.Stats.SolverCalls++
	st := p.s.LastStats()
	suite.Stats.SolverNodes += st.Nodes
	suite.Stats.SolverRestarts += st.Restarts
	suite.Stats.SolverProblemSize += p.s.ProblemSize()
	suite.Stats.ComponentCount += st.ComponentCount
	suite.Stats.ComponentCacheHits += st.ComponentCacheHits
	suite.Stats.SpeculativeRuns += st.SpeculativeRuns
	switch {
	case err == nil:
		suite.Stats.SatCount++
		return p.extract(m, purpose)
	case errors.Is(err, solver.ErrUnsat):
		suite.Stats.UnsatCount++
		suite.Skipped = append(suite.Skipped, Skip{Purpose: purpose, Reason: "constraints unsatisfiable: targeted mutants are equivalent"})
		return nil, nil
	default:
		return nil, fmt.Errorf("core: %s: %w", purpose, err)
	}
}

// useSharedCore reports whether this attempt should attach the shared
// pre-propagated database-constraint core instead of asserting the
// constraints per goal. Requirements: the feature is enabled, the goal
// did not suppress any foreign key (skipFK goals assert a filtered
// constraint set the core does not match), and the attempt will solve
// with the bitset kernel — the legacy paths ignore an attached base
// (the solver refuses with an error rather than miscompute, see
// solver.AttachBase).
func (g *Generator) useSharedCore(gb *goalBudget, p *problem) bool {
	if g.opts.NoSharedCore || p.skipFK != nil {
		return false
	}
	unfold := g.opts.Unfold
	if gb.unfold != nil {
		unfold = *gb.unfold
	}
	return unfold && (!g.opts.NoSolverHeuristics || !g.opts.NoDecompose)
}

// addIfGenerated appends a dataset when generation succeeded.
func (suite *Suite) addIfGenerated(ds *schema.Dataset) {
	if ds != nil {
		suite.Datasets = append(suite.Datasets, ds)
	}
}
