// Package baseline reimplements the dataset-generation approach of the
// X-Data short paper [14] (Gupta, Vira, Sudarshan, ICDE 2010), which the
// full paper compares against in §VI-C.1. The short-paper algorithm
//
//   - selects tuples from an existing input database instead of solving
//     constraints (it "did not generate synthetic data if the output of
//     the original query was insufficient"),
//   - does not handle foreign-key constraints, and
//   - targets join-type mutants by making one side of a join empty: for
//     a node L ⋈ E it empties a relation of E, which differentiates
//     inner from outer joins when relations are not repeated and no
//     foreign keys exist (§IV-B of the full paper).
//
// Its per-tree-node dataset construction is why the full paper describes
// its dataset count as exponential; identical datasets are de-duplicated
// here (they collapse to one dataset per relation occurrence), which only
// helps the baseline.
package baseline

import (
	"fmt"

	"repro/internal/mutation"
	"repro/internal/qtree"
	"repro/internal/schema"
)

// Generate produces the short-paper test suite for a query from an input
// database: the input database itself (the "original query" dataset),
// plus, for every join-tree node and side, the input database with one
// relation of that side emptied. Relations transitively referencing an
// emptied relation are emptied too, so the datasets remain legal even on
// schemas with foreign keys.
func Generate(q *qtree.Query, input *schema.Dataset) ([]*schema.Dataset, error) {
	if input == nil {
		return nil, fmt.Errorf("baseline: the [14] algorithm requires an input database")
	}
	full := input.Clone()
	full.Purpose = "[14] original query dataset (input database)"
	out := []*schema.Dataset{full}

	trees := []*qtree.Node{q.Root}
	if q.AllInner() {
		var err error
		trees, err = mutation.EnumerateTrees(q)
		if err != nil {
			return nil, err
		}
	}
	seen := map[string]bool{}
	for _, tree := range trees {
		for _, node := range tree.Nodes(nil) {
			for _, side := range []*qtree.Node{node.Left, node.Right} {
				for _, occ := range side.Leaves(nil) {
					if seen[occ.Rel.Name] {
						continue
					}
					seen[occ.Rel.Name] = true
					ds, err := emptyRelation(q.Schema, input, occ.Rel.Name)
					if err != nil {
						return nil, err
					}
					ds.Purpose = fmt.Sprintf("[14] dataset with %s empty", occ.Rel.Name)
					out = append(out, ds)
				}
			}
		}
	}
	return out, nil
}

// emptyRelation clones the input with the named relation (and everything
// transitively referencing it) emptied.
func emptyRelation(sch *schema.Schema, input *schema.Dataset, name string) (*schema.Dataset, error) {
	drop := map[string]bool{name: true}
	for changed := true; changed; {
		changed = false
		for _, rel := range sch.Relations() {
			if drop[rel.Name] {
				continue
			}
			for _, fk := range rel.ForeignKeys {
				if drop[fk.RefTable] {
					drop[rel.Name] = true
					changed = true
				}
			}
		}
	}
	ds := schema.NewDataset("")
	for _, t := range input.TableNames() {
		if drop[t] {
			continue
		}
		for _, row := range input.Rows(t) {
			ds.Insert(t, row.Clone())
		}
	}
	if err := sch.CheckDataset(ds); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return ds, nil
}
