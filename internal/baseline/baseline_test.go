package baseline

import (
	"strings"
	"testing"

	"repro/internal/mutation"
	"repro/internal/qtree"
	"repro/internal/university"
)

func TestGenerateDatasets(t *testing.T) {
	sch := university.Schema(0)
	q, err := qtree.BuildSQL(sch, university.TableIQueries()[1].SQL) // Q2: 3 relations
	if err != nil {
		t.Fatal(err)
	}
	input := university.SampleDB(sch, 3)
	dss, err := Generate(q, input)
	if err != nil {
		t.Fatal(err)
	}
	// 1 full input DB + one emptied dataset per relation.
	if len(dss) != 1+3 {
		t.Fatalf("datasets = %d", len(dss))
	}
	for _, ds := range dss {
		if err := sch.CheckDataset(ds); err != nil {
			t.Errorf("%q: %v", ds.Purpose, err)
		}
	}
}

func TestGenerateRequiresInput(t *testing.T) {
	sch := university.Schema(0)
	q, _ := qtree.BuildSQL(sch, university.TableIQueries()[0].SQL)
	if _, err := Generate(q, nil); err == nil {
		t.Error("nil input database not rejected")
	}
}

func TestEmptyingCascadesOverForeignKeys(t *testing.T) {
	// With FKs enabled, emptying instructor must also empty teaches or
	// the dataset violates referential integrity.
	sch := university.Schema(1) // teaches.id -> instructor.id
	q, err := qtree.BuildSQL(sch, university.TableIQueries()[0].SQL)
	if err != nil {
		t.Fatal(err)
	}
	input := university.SampleDB(sch, 3)
	dss, err := Generate(q, input)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range dss {
		if !strings.Contains(ds.Purpose, "instructor empty") {
			continue
		}
		if len(ds.Rows("teaches")) != 0 {
			t.Errorf("teaches not cascaded:\n%s", ds)
		}
	}
}

func TestBaselineKillsJoinMutantsWithoutFKs(t *testing.T) {
	// §IV-B: with no FKs and no repeated relations, emptying a relation
	// of side E differentiates inner from outer joins; the baseline
	// kills all non-equivalent join mutants of Q1.
	sch := university.Schema(0)
	q, err := qtree.BuildSQL(sch, university.TableIQueries()[0].SQL)
	if err != nil {
		t.Fatal(err)
	}
	dss, err := Generate(q, university.SampleDB(sch, 3))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := mutation.JoinTypeMutants(q, mutation.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mutation.Evaluate(q, ms, dss)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KilledCount() != len(ms) {
		t.Errorf("baseline killed %d of %d join mutants without FKs", rep.KilledCount(), len(ms))
	}
}

func TestBaselineMissesAggregationMutants(t *testing.T) {
	// The incompleteness the paper reports: [14] selects existing tuples
	// and cannot construct the 3-tuple aggregation datasets, so most
	// aggregation mutants survive while X-Data kills them all.
	sch := university.Schema(0)
	q, err := qtree.BuildSQL(sch, "SELECT dept_name, SUM(salary) FROM instructor GROUP BY dept_name")
	if err != nil {
		t.Fatal(err)
	}
	dss, err := Generate(q, university.SampleDB(sch, 5))
	if err != nil {
		t.Fatal(err)
	}
	ms := mutation.AggregateMutants(q)
	rep, err := mutation.Evaluate(q, ms, dss)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KilledCount() == len(ms) {
		t.Errorf("baseline unexpectedly killed all %d aggregation mutants", len(ms))
	}
}
