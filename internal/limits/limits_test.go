package limits

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqltypes"
)

func TestExceededWrapsSentinel(t *testing.T) {
	err := Exceeded("widgets", 10, 3)
	if !errors.Is(err, ErrResourceLimit) {
		t.Fatalf("Exceeded must wrap ErrResourceLimit, got %v", err)
	}
	for _, want := range []string{"widgets", "10", "3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %q", err, want)
		}
	}
}

func TestCheckInput(t *testing.T) {
	l := Limits{MaxInputBytes: 4}
	if err := l.CheckInput("query", "abcd"); err != nil {
		t.Fatalf("at the limit: %v", err)
	}
	if err := l.CheckInput("query", "abcde"); !errors.Is(err, ErrResourceLimit) {
		t.Fatalf("over the limit: got %v, want ErrResourceLimit", err)
	}
	// Zero means unlimited.
	if err := Unlimited().CheckInput("query", strings.Repeat("x", 1<<21)); err != nil {
		t.Fatalf("unlimited: %v", err)
	}
}

func mustRel(t *testing.T, name string, attrs []schema.Attribute, pk []string, fks []schema.ForeignKey) *schema.Relation {
	t.Helper()
	r, err := schema.NewRelation(name, attrs, pk, fks)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCheckSchemaRelations(t *testing.T) {
	s := schema.New()
	for i := 0; i < 3; i++ {
		s.MustAddRelation(mustRel(t, fmt.Sprintf("t%d", i),
			[]schema.Attribute{{Name: "id", Type: sqltypes.KindInt}}, nil, nil))
	}
	if err := (Limits{MaxRelations: 3}).CheckSchema(s); err != nil {
		t.Fatalf("at the limit: %v", err)
	}
	if err := (Limits{MaxRelations: 2}).CheckSchema(s); !errors.Is(err, ErrResourceLimit) {
		t.Fatalf("over the limit: got %v, want ErrResourceLimit", err)
	}
}

func TestCheckSchemaAttributes(t *testing.T) {
	attrs := make([]schema.Attribute, 5)
	for i := range attrs {
		attrs[i] = schema.Attribute{Name: fmt.Sprintf("a%d", i), Type: sqltypes.KindInt}
	}
	s := schema.New()
	s.MustAddRelation(mustRel(t, "wide", attrs, nil, nil))
	if err := (Limits{MaxAttributes: 5}).CheckSchema(s); err != nil {
		t.Fatalf("at the limit: %v", err)
	}
	if err := (Limits{MaxAttributes: 4}).CheckSchema(s); !errors.Is(err, ErrResourceLimit) {
		t.Fatalf("over the limit: got %v, want ErrResourceLimit", err)
	}
}

func TestCheckSchemaFKClosure(t *testing.T) {
	// A chain t0 <- t1 <- t2 <- t3: the single-column closure has
	// 3 + 2 + 1 = 6 edges.
	s := schema.New()
	s.MustAddRelation(mustRel(t, "t0", []schema.Attribute{{Name: "id", Type: sqltypes.KindInt}}, []string{"id"}, nil))
	for i := 1; i < 4; i++ {
		s.MustAddRelation(mustRel(t, fmt.Sprintf("t%d", i),
			[]schema.Attribute{{Name: "id", Type: sqltypes.KindInt}}, []string{"id"},
			[]schema.ForeignKey{{Columns: []string{"id"}, RefTable: fmt.Sprintf("t%d", i-1), RefColumns: []string{"id"}}}))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Limits{MaxFKClosure: 6}).CheckSchema(s); err != nil {
		t.Fatalf("at the limit: %v", err)
	}
	if err := (Limits{MaxFKClosure: 5}).CheckSchema(s); !errors.Is(err, ErrResourceLimit) {
		t.Fatalf("over the limit: got %v, want ErrResourceLimit", err)
	}
}

func TestDefaultsArePositive(t *testing.T) {
	d := Default()
	for name, v := range map[string]int{
		"MaxInputBytes": d.MaxInputBytes,
		"MaxParseDepth": d.MaxParseDepth,
		"MaxRelations":  d.MaxRelations,
		"MaxAttributes": d.MaxAttributes,
		"MaxFKClosure":  d.MaxFKClosure,
		"MaxDomainSize": d.MaxDomainSize,
	} {
		if v <= 0 {
			t.Errorf("Default().%s = %d, want positive", name, v)
		}
	}
}
