// Package limits is the resource-governance layer shared by the
// network-facing daemon (internal/service, cmd/xdatad) and the CLIs: a
// single bundle of ceilings on the size of untrusted inputs — DDL and
// query byte counts, parser recursion depth, schema cardinalities, and
// the solver's candidate-domain width — with one typed sentinel error,
// ErrResourceLimit, that every layer maps onto its own rejection channel
// (HTTP 422 in the daemon, exit code 1 in the CLIs).
//
// The point of the layer is that adversarial inputs are rejected by
// *counting*, before they consume solver budget: a 10 MB DDL, a
// 10 000-deep parenthesized expression, or a 500-relation schema is
// refused in microseconds at the parse/validate boundary instead of
// inflating a constraint system and burning the per-goal budgets
// downstream ("Parser Knows Best": grammar-level hardening).
package limits

import (
	"errors"
	"fmt"
)

// ErrResourceLimit is the sentinel wrapped by every limit violation.
// Test with errors.Is; violations are client errors (the input is too
// large), not server faults.
var ErrResourceLimit = errors.New("resource limit exceeded")

// Exceeded builds a limit-violation error wrapping ErrResourceLimit.
func Exceeded(what string, got, max int) error {
	return fmt.Errorf("%s: %d exceeds limit %d: %w", what, got, max, ErrResourceLimit)
}

// Default ceilings. They are deliberately generous — far beyond anything
// the paper's workloads or the randomized test generator produce — so
// only genuinely adversarial inputs hit them.
const (
	// DefaultMaxInputBytes caps the byte size of one parsed input (a
	// DDL file, a query, an INSERT set).
	DefaultMaxInputBytes = 1 << 20 // 1 MiB
	// DefaultMaxParseDepth caps parser recursion: nested parentheses,
	// chained NOTs, unary minus towers, nested subqueries and
	// parenthesized join trees all count against it.
	DefaultMaxParseDepth = 200
	// DefaultMaxRelations caps the number of relations in a schema.
	DefaultMaxRelations = 256
	// DefaultMaxAttributes caps the attributes of any one relation.
	DefaultMaxAttributes = 512
	// DefaultMaxFKClosure caps the size of the schema's transitive
	// foreign-key closure (attribute-level edges): dense FK meshes make
	// the closure — and the chase constraints built from it — quadratic
	// or worse in the schema size.
	DefaultMaxFKClosure = 4096
	// DefaultMaxDomainSize caps the per-variable candidate-domain width
	// the generator may build (query constants, boundaries, pairwise
	// sums/differences, arithmetic-offset closure, input-DB values).
	// Solver work grows superlinearly in it.
	DefaultMaxDomainSize = 100_000
	// DefaultMaxCacheBytes caps the daemon's cross-request suite cache
	// (resident marshaled-response bytes, LRU-evicted beyond the cap).
	DefaultMaxCacheBytes = 64 << 20 // 64 MiB
	// DefaultMaxDiskCacheBytes caps the durable on-disk tier under the
	// memory cache (segment bytes under -cache-dir, whole-segment
	// evicted beyond the cap). Larger than the memory cap: disk is
	// cheap, and the tier's job is surviving restarts with a deep
	// working set.
	DefaultMaxDiskCacheBytes = 256 << 20 // 256 MiB
)

// Limits bundles the resource ceilings. The zero value of a field means
// "unlimited" for that dimension; Default returns the recommended
// production ceilings.
type Limits struct {
	// MaxInputBytes caps the byte length of one parsed input.
	MaxInputBytes int
	// MaxParseDepth caps parser recursion depth.
	MaxParseDepth int
	// MaxRelations caps schema relation count.
	MaxRelations int
	// MaxAttributes caps per-relation attribute count.
	MaxAttributes int
	// MaxFKClosure caps the attribute-level FK transitive-closure size.
	MaxFKClosure int
	// MaxDomainSize caps the generator's candidate-domain width.
	MaxDomainSize int
	// MaxCacheBytes caps the daemon's cross-request suite cache. Unlike
	// the other ceilings it governs a server-side structure, not an
	// input, so it has a third state: 0 = unbounded (consistent with
	// the zero-means-unlimited convention), negative = cache disabled
	// (store nothing).
	MaxCacheBytes int
	// MaxDiskCacheBytes caps the durable disk tier under the memory
	// cache (-cache-dir segments). Same three-state semantics as
	// MaxCacheBytes: 0 = unbounded, negative = store nothing.
	MaxDiskCacheBytes int64
}

// Default returns the production ceilings.
func Default() Limits {
	return Limits{
		MaxInputBytes:     DefaultMaxInputBytes,
		MaxParseDepth:     DefaultMaxParseDepth,
		MaxRelations:      DefaultMaxRelations,
		MaxAttributes:     DefaultMaxAttributes,
		MaxFKClosure:      DefaultMaxFKClosure,
		MaxDomainSize:     DefaultMaxDomainSize,
		MaxCacheBytes:     DefaultMaxCacheBytes,
		MaxDiskCacheBytes: DefaultMaxDiskCacheBytes,
	}
}

// Unlimited returns a Limits with every ceiling disabled; the library
// default for in-process callers, who are trusted with their own
// inputs.
func Unlimited() Limits { return Limits{} }

// CheckInput enforces MaxInputBytes on a raw input string.
func (l Limits) CheckInput(what string, input string) error {
	if l.MaxInputBytes > 0 && len(input) > l.MaxInputBytes {
		return Exceeded(what+" size (bytes)", len(input), l.MaxInputBytes)
	}
	return nil
}
