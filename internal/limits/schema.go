package limits

import (
	"repro/internal/schema"
)

// CheckSchema enforces the schema-cardinality ceilings: relation count,
// per-relation attribute count, and the size of the attribute-level
// foreign-key transitive closure. The FK-closure ceiling matters most:
// a dense FK mesh makes the closure (and the chase constraints built
// from it by Algorithm 1's preprocessing) blow up combinatorially even
// when the DDL itself is small.
func (l Limits) CheckSchema(s *schema.Schema) error {
	rels := s.Relations()
	if l.MaxRelations > 0 && len(rels) > l.MaxRelations {
		return Exceeded("schema relations", len(rels), l.MaxRelations)
	}
	if l.MaxAttributes > 0 {
		for _, r := range rels {
			if r.Arity() > l.MaxAttributes {
				return Exceeded("relation "+r.Name+" attributes", r.Arity(), l.MaxAttributes)
			}
		}
	}
	if l.MaxFKClosure > 0 {
		if n := len(s.FKClosure()); n > l.MaxFKClosure {
			return Exceeded("foreign-key closure edges", n, l.MaxFKClosure)
		}
	}
	return nil
}
