// Package sqltypes provides the NULL-aware SQL value model shared by the
// schema catalog, the relational execution engine, the constraint solver
// and the X-Data dataset generator.
//
// Values follow SQL semantics: comparisons involving NULL yield Unknown
// (three-valued logic), NULLs compare equal for grouping and duplicate
// elimination ("IS NOT DISTINCT FROM" semantics), and arithmetic on NULL
// yields NULL.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported value kinds. KindNull is the kind of the untyped NULL;
// typed NULLs keep their column kind with the Null flag set.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind supports arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a single SQL value. The zero Value is the untyped NULL.
type Value struct {
	kind Kind
	null bool
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the untyped NULL value.
func Null() Value { return Value{kind: KindNull, null: true} }

// TypedNull returns a NULL carrying the given column kind, as produced by
// outer-join padding.
func TypedNull(k Kind) Value { return Value{kind: k, null: true} }

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind returns the value's kind. For typed NULLs this is the column kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.null }

// Int returns the integer payload. It panics if the value is not a
// non-NULL integer; callers are expected to have checked Kind/IsNull.
func (v Value) Int() int64 {
	if v.null || v.kind != KindInt {
		panic(fmt.Sprintf("sqltypes: Int() on %s", v))
	}
	return v.i
}

// Float returns the value as float64, converting integers. It panics on
// NULL or non-numeric values.
func (v Value) Float() float64 {
	if v.null || !v.kind.Numeric() {
		panic(fmt.Sprintf("sqltypes: Float() on %s", v))
	}
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Str returns the string payload; it panics on NULL or non-string values.
func (v Value) Str() string {
	if v.null || v.kind != KindString {
		panic(fmt.Sprintf("sqltypes: Str() on %s", v))
	}
	return v.s
}

// Bool returns the boolean payload; it panics on NULL or non-boolean
// values.
func (v Value) Bool() bool {
	if v.null || v.kind != KindBool {
		panic(fmt.Sprintf("sqltypes: Bool() on %s", v))
	}
	return v.b
}

// String renders the value for display and for canonical row encodings.
func (v Value) String() string {
	if v.null {
		return "NULL"
	}
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "NULL"
	}
}

// SQLLiteral renders the value as a SQL literal (strings quoted, quotes
// doubled) suitable for INSERT statements.
func (v Value) SQLLiteral() string {
	if v.null {
		return "NULL"
	}
	if v.kind == KindString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// Tristate is the result of a three-valued logic evaluation.
type Tristate uint8

// Three-valued logic outcomes.
const (
	False Tristate = iota
	True
	Unknown
)

// String returns the 3VL name.
func (t Tristate) String() string {
	switch t {
	case False:
		return "FALSE"
	case True:
		return "TRUE"
	default:
		return "UNKNOWN"
	}
}

// And computes SQL 3VL conjunction.
func (t Tristate) And(o Tristate) Tristate {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or computes SQL 3VL disjunction.
func (t Tristate) Or(o Tristate) Tristate {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// Not computes SQL 3VL negation.
func (t Tristate) Not() Tristate {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// CmpOp is a SQL comparison operator.
type CmpOp uint8

// The six comparison operators of the paper's mutation space.
const (
	OpEQ CmpOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// AllCmpOps lists every comparison operator, in a stable order.
var AllCmpOps = []CmpOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Negate returns the complementary operator (e.g. < becomes >=).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEQ:
		return OpNE
	case OpNE:
		return OpEQ
	case OpLT:
		return OpGE
	case OpLE:
		return OpGT
	case OpGT:
		return OpLE
	case OpGE:
		return OpLT
	}
	return op
}

// Flip returns the operator with its operands swapped (e.g. a < b becomes
// b > a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	default:
		return op // = and <> are symmetric
	}
}

// HoldsSign reports whether the operator accepts the given comparison sign
// (-1: less, 0: equal, +1: greater).
func (op CmpOp) HoldsSign(sign int) bool {
	switch op {
	case OpEQ:
		return sign == 0
	case OpNE:
		return sign != 0
	case OpLT:
		return sign < 0
	case OpLE:
		return sign <= 0
	case OpGT:
		return sign > 0
	case OpGE:
		return sign >= 0
	}
	return false
}

// Compare orders two non-NULL values of compatible kinds, returning
// -1, 0 or +1. Numeric kinds compare numerically across int/float. It
// panics on NULL or incomparable kinds; use TriCompare for SQL semantics.
func Compare(a, b Value) int {
	if a.null || b.null {
		panic("sqltypes: Compare on NULL")
	}
	switch {
	case a.kind.Numeric() && b.kind.Numeric():
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			}
			return 0
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	case a.kind == KindString && b.kind == KindString:
		return strings.Compare(a.s, b.s)
	case a.kind == KindBool && b.kind == KindBool:
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("sqltypes: incomparable kinds %s and %s", a.kind, b.kind))
}

// TriCompare applies op to a and b with SQL semantics: if either operand
// is NULL the result is Unknown.
func TriCompare(op CmpOp, a, b Value) Tristate {
	if a.null || b.null {
		return Unknown
	}
	if op.HoldsSign(Compare(a, b)) {
		return True
	}
	return False
}

// Identical reports whether two values are indistinguishable for grouping,
// duplicate elimination and result comparison: NULLs are identical to each
// other (within numeric/string classes), and 1 equals 1.0.
func Identical(a, b Value) bool {
	if a.null || b.null {
		return a.null == b.null
	}
	if a.kind.Numeric() != b.kind.Numeric() {
		return false
	}
	if !a.kind.Numeric() && a.kind != b.kind {
		return false
	}
	return Compare(a, b) == 0
}

// Add returns a+b with numeric promotion; NULL if either side is NULL.
func Add(a, b Value) Value { return arith(a, b, '+') }

// Sub returns a-b with numeric promotion; NULL if either side is NULL.
func Sub(a, b Value) Value { return arith(a, b, '-') }

// Mul returns a*b with numeric promotion; NULL if either side is NULL.
func Mul(a, b Value) Value { return arith(a, b, '*') }

// Div returns a/b; integer division stays integral (SQL behaviour); NULL
// if either side is NULL or b is zero (we model division by zero as NULL
// rather than an error, since generated data never relies on it).
func Div(a, b Value) Value { return arith(a, b, '/') }

func arith(a, b Value, op byte) Value {
	if a.null || b.null {
		return Null()
	}
	if !a.kind.Numeric() || !b.kind.Numeric() {
		panic(fmt.Sprintf("sqltypes: arithmetic %c on %s, %s", op, a.kind, b.kind))
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case '+':
			return NewInt(a.i + b.i)
		case '-':
			return NewInt(a.i - b.i)
		case '*':
			return NewInt(a.i * b.i)
		case '/':
			if b.i == 0 {
				return Null()
			}
			return NewInt(a.i / b.i)
		}
	}
	af, bf := a.Float(), b.Float()
	switch op {
	case '+':
		return NewFloat(af + bf)
	case '-':
		return NewFloat(af - bf)
	case '*':
		return NewFloat(af * bf)
	case '/':
		if bf == 0 {
			return Null()
		}
		return NewFloat(af / bf)
	}
	panic("unreachable")
}

// Row is a tuple of values.
type Row []Value

// Key returns a canonical string encoding of the row, used for duplicate
// detection, grouping and multiset comparison. NULLs encode distinctly
// from any literal value.
func (r Row) Key() string { return string(r.AppendKey(nil)) }

// AppendKey appends the Key encoding to dst and returns the extended
// buffer. Hot dedup loops reuse one buffer across rows and look up maps
// via m[string(buf)] (which Go compiles allocation-free), interning the
// string only when a key is actually stored.
func (r Row) AppendKey(dst []byte) []byte {
	for i, v := range r {
		if i > 0 {
			dst = append(dst, '\x1f')
		}
		if v.null {
			dst = append(dst, '\x00', 'N')
			continue
		}
		switch v.kind {
		case KindInt:
			dst = append(dst, 'i')
			dst = strconv.AppendInt(dst, v.i, 10)
		case KindFloat:
			// Encode integral floats identically to ints so that
			// numeric-equal rows compare identical.
			if v.f == float64(int64(v.f)) {
				dst = append(dst, 'i')
				dst = strconv.AppendInt(dst, int64(v.f), 10)
			} else {
				dst = append(dst, 'f')
				dst = strconv.AppendFloat(dst, v.f, 'g', -1, 64)
			}
		case KindString:
			dst = append(dst, 's')
			dst = append(dst, v.s...)
		case KindBool:
			if v.b {
				dst = append(dst, 'b', 'T')
			} else {
				dst = append(dst, 'b', 'F')
			}
		}
	}
	return dst
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashSeed is the FNV-1a offset basis: the starting state for
// HashValue chains (join keys, group keys, row hashes).
const HashSeed = uint64(fnvOffset64)

// HashValue folds one value into an FNV-1a hash state with the row
// canonical encoding: NULLs hash distinctly from every literal,
// integral floats hash identically to the equal integer (so 1 and 1.0
// — which Compare orders equal — collide on purpose), and every value
// is tagged and fixed-width or terminated, so chained hashes are
// prefix-free. Identical(a, b) implies HashValue(h, a) == HashValue(h,
// b); distinct values collide only with FNV's ~2^-64 probability. The
// engine uses it for join keys, grouping, DISTINCT and multiset
// comparison.
func HashValue(h uint64, v Value) uint64 {
	if v.null {
		return (h ^ 0xff) * fnvPrime64
	}
	switch v.kind {
	case KindInt:
		h = (h ^ 'i') * fnvPrime64
		return hashUint64(h, uint64(v.i))
	case KindFloat:
		// Integral floats encode as ints so numeric-equal values hash
		// identical (matching Key()).
		if v.f == float64(int64(v.f)) {
			h = (h ^ 'i') * fnvPrime64
			return hashUint64(h, uint64(int64(v.f)))
		}
		h = (h ^ 'f') * fnvPrime64
		return hashUint64(h, math.Float64bits(v.f))
	case KindString:
		h = (h ^ 's') * fnvPrime64
		for i := 0; i < len(v.s); i++ {
			h = (h ^ uint64(v.s[i])) * fnvPrime64
		}
		return (h ^ 0x1f) * fnvPrime64 // terminator: prefix-freedom
	case KindBool:
		if v.b {
			return (h ^ 'T') * fnvPrime64
		}
		return (h ^ 'F') * fnvPrime64
	}
	return (h ^ 0xff) * fnvPrime64
}

// Hash returns a 64-bit FNV-1a hash of the row's canonical encoding:
// the cheap replacement for Key() on the result-comparison hot path,
// where building a fresh string per row dominated profile time. The
// encoding mirrors Key() exactly — see HashValue — so Hash(a) ==
// Hash(b) whenever Key(a) == Key(b) (and collides otherwise only with
// FNV's ~2^-64 probability).
func (r Row) Hash() uint64 {
	h := HashSeed
	for _, v := range r {
		h = HashValue(h, v)
	}
	return h
}

// Identical reports whether two rows are element-wise Identical: the
// exact equality behind Key() without building the strings. It is the
// collision check paired with Hash-keyed maps (grouping, DISTINCT,
// duplicate elimination).
func (r Row) Identical(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i, v := range r {
		if !Identical(v, o[i]) {
			return false
		}
	}
	return true
}

func hashUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a parenthesized value list.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
