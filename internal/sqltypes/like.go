package sqltypes

// MatchLike reports whether s matches a SQL LIKE pattern, where '%'
// matches any (possibly empty) substring and '_' matches exactly one
// byte. Matching is case-sensitive and byte-wise (identifiers and string
// data in this SQL fragment are ASCII). No escape character is
// supported: the pattern metacharacters always act as wildcards.
//
// The matcher is iterative greedy-with-backtracking over the single
// trailing '%' seen so far (the classic glob algorithm): linear in
// len(s)*wildcards in the worst case, constant space.
func MatchLike(s, pattern string) bool {
	var si, pi int
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			starP, starS = pi, si
			pi++
		case starP >= 0:
			// Backtrack: let the last '%' absorb one more byte.
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// TriLike evaluates "v [NOT] LIKE pattern" in three-valued logic: NULL
// input yields Unknown, otherwise the match result (negated for NOT
// LIKE).
func TriLike(v Value, pattern string, not bool) Tristate {
	if v.IsNull() {
		return Unknown
	}
	t := False
	if MatchLike(v.Str(), pattern) {
		t = True
	}
	if not {
		return t.Not()
	}
	return t
}
