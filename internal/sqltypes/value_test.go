package sqltypes

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INT",
		KindFloat:  "FLOAT",
		KindString: "VARCHAR",
		KindBool:   "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if v := NewInt(42); v.Int() != 42 || v.Kind() != KindInt || v.IsNull() {
		t.Errorf("NewInt round-trip failed: %v", v)
	}
	if v := NewFloat(2.5); v.Float() != 2.5 || v.Kind() != KindFloat {
		t.Errorf("NewFloat round-trip failed: %v", v)
	}
	if v := NewString("abc"); v.Str() != "abc" || v.Kind() != KindString {
		t.Errorf("NewString round-trip failed: %v", v)
	}
	if v := NewBool(true); !v.Bool() || v.Kind() != KindBool {
		t.Errorf("NewBool round-trip failed: %v", v)
	}
	if v := Null(); !v.IsNull() || v.Kind() != KindNull {
		t.Errorf("Null() = %v", v)
	}
	if v := TypedNull(KindInt); !v.IsNull() || v.Kind() != KindInt {
		t.Errorf("TypedNull(KindInt) = %v", v)
	}
}

func TestIntFloatCrossCompare(t *testing.T) {
	if Compare(NewInt(3), NewFloat(3.0)) != 0 {
		t.Error("3 should equal 3.0")
	}
	if Compare(NewInt(3), NewFloat(3.5)) != -1 {
		t.Error("3 should be less than 3.5")
	}
	if Compare(NewFloat(4.5), NewInt(4)) != 1 {
		t.Error("4.5 should be greater than 4")
	}
}

func TestStringCompare(t *testing.T) {
	if Compare(NewString("a"), NewString("b")) != -1 {
		t.Error(`"a" < "b" expected`)
	}
	if Compare(NewString("b"), NewString("b")) != 0 {
		t.Error(`"b" == "b" expected`)
	}
}

func TestTriCompareNulls(t *testing.T) {
	for _, op := range AllCmpOps {
		if got := TriCompare(op, Null(), NewInt(1)); got != Unknown {
			t.Errorf("NULL %s 1 = %v, want UNKNOWN", op, got)
		}
		if got := TriCompare(op, NewInt(1), Null()); got != Unknown {
			t.Errorf("1 %s NULL = %v, want UNKNOWN", op, got)
		}
		if got := TriCompare(op, Null(), Null()); got != Unknown {
			t.Errorf("NULL %s NULL = %v, want UNKNOWN", op, got)
		}
	}
}

func TestTriCompareOps(t *testing.T) {
	type tc struct {
		op   CmpOp
		a, b int64
		want Tristate
	}
	cases := []tc{
		{OpEQ, 1, 1, True}, {OpEQ, 1, 2, False},
		{OpNE, 1, 2, True}, {OpNE, 2, 2, False},
		{OpLT, 1, 2, True}, {OpLT, 2, 2, False}, {OpLT, 3, 2, False},
		{OpLE, 2, 2, True}, {OpLE, 3, 2, False},
		{OpGT, 3, 2, True}, {OpGT, 2, 2, False},
		{OpGE, 2, 2, True}, {OpGE, 1, 2, False},
	}
	for _, c := range cases {
		if got := TriCompare(c.op, NewInt(c.a), NewInt(c.b)); got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestTristateLogic(t *testing.T) {
	// Truth tables for SQL 3VL.
	vals := []Tristate{True, False, Unknown}
	for _, a := range vals {
		for _, b := range vals {
			and := a.And(b)
			or := a.Or(b)
			switch {
			case a == False || b == False:
				if and != False {
					t.Errorf("%v AND %v = %v, want FALSE", a, b, and)
				}
			case a == True && b == True:
				if and != True {
					t.Errorf("%v AND %v = %v, want TRUE", a, b, and)
				}
			default:
				if and != Unknown {
					t.Errorf("%v AND %v = %v, want UNKNOWN", a, b, and)
				}
			}
			switch {
			case a == True || b == True:
				if or != True {
					t.Errorf("%v OR %v = %v, want TRUE", a, b, or)
				}
			case a == False && b == False:
				if or != False {
					t.Errorf("%v OR %v = %v, want FALSE", a, b, or)
				}
			default:
				if or != Unknown {
					t.Errorf("%v OR %v = %v, want UNKNOWN", a, b, or)
				}
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("3VL NOT truth table violated")
	}
}

func TestNegateFlipInvolutions(t *testing.T) {
	for _, op := range AllCmpOps {
		if op.Negate().Negate() != op {
			t.Errorf("Negate not an involution for %s", op)
		}
		if op.Flip().Flip() != op {
			t.Errorf("Flip not an involution for %s", op)
		}
	}
}

// Property: for all int pairs, exactly one of <, =, > holds, and the
// derived operators are consistent with them.
func TestCmpOpTrichotomyProperty(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := NewInt(int64(a)), NewInt(int64(b))
		lt := TriCompare(OpLT, va, vb) == True
		eq := TriCompare(OpEQ, va, vb) == True
		gt := TriCompare(OpGT, va, vb) == True
		count := 0
		for _, h := range []bool{lt, eq, gt} {
			if h {
				count++
			}
		}
		if count != 1 {
			return false
		}
		le := TriCompare(OpLE, va, vb) == True
		ge := TriCompare(OpGE, va, vb) == True
		ne := TriCompare(OpNE, va, vb) == True
		return le == (lt || eq) && ge == (gt || eq) && ne == !eq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: negated operator evaluates to the logical complement on
// non-NULL values.
func TestNegateSemanticsProperty(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := NewInt(int64(a)), NewInt(int64(b))
		for _, op := range AllCmpOps {
			if TriCompare(op, va, vb) == TriCompare(op.Negate(), va, vb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: flipped operator with swapped operands agrees with original.
func TestFlipSemanticsProperty(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := NewInt(int64(a)), NewInt(int64(b))
		for _, op := range AllCmpOps {
			if TriCompare(op, va, vb) != TriCompare(op.Flip(), vb, va) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdentical(t *testing.T) {
	if !Identical(Null(), Null()) {
		t.Error("NULL should be Identical to NULL")
	}
	if Identical(Null(), NewInt(0)) || Identical(NewInt(0), Null()) {
		t.Error("NULL should not be Identical to 0")
	}
	if !Identical(NewInt(1), NewFloat(1.0)) {
		t.Error("1 should be Identical to 1.0")
	}
	if Identical(NewInt(1), NewString("1")) {
		t.Error(`1 should not be Identical to "1"`)
	}
}

func TestArithmetic(t *testing.T) {
	if got := Add(NewInt(2), NewInt(3)); got.Int() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := Sub(NewInt(2), NewInt(3)); got.Int() != -1 {
		t.Errorf("2-3 = %v", got)
	}
	if got := Mul(NewInt(2), NewInt(3)); got.Int() != 6 {
		t.Errorf("2*3 = %v", got)
	}
	if got := Div(NewInt(7), NewInt(2)); got.Int() != 3 {
		t.Errorf("7/2 = %v (integer division expected)", got)
	}
	if got := Div(NewInt(7), NewInt(0)); !got.IsNull() {
		t.Errorf("7/0 = %v, want NULL", got)
	}
	if got := Add(NewInt(1), NewFloat(0.5)); got.Float() != 1.5 {
		t.Errorf("1+0.5 = %v", got)
	}
	if got := Add(Null(), NewInt(1)); !got.IsNull() {
		t.Errorf("NULL+1 = %v, want NULL", got)
	}
}

func TestRowKey(t *testing.T) {
	r1 := Row{NewInt(1), NewString("a"), Null()}
	r2 := Row{NewInt(1), NewString("a"), Null()}
	r3 := Row{NewInt(1), NewString("a"), NewInt(0)}
	if r1.Key() != r2.Key() {
		t.Error("identical rows should share a key")
	}
	if r1.Key() == r3.Key() {
		t.Error("NULL and 0 must have distinct keys")
	}
	// Integral floats and ints must collide so 1 == 1.0 in results.
	if (Row{NewFloat(2.0)}).Key() != (Row{NewInt(2)}).Key() {
		t.Error("2.0 and 2 should share a key")
	}
	// Adjacent-cell ambiguity: ("ab","c") vs ("a","bc").
	if (Row{NewString("ab"), NewString("c")}).Key() == (Row{NewString("a"), NewString("bc")}).Key() {
		t.Error("row key must not concatenate cells ambiguously")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewInt(2)}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Error("Clone must not share backing storage")
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := NewString("it's").SQLLiteral(); got != "'it''s'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := Null().SQLLiteral(); got != "NULL" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := NewInt(-3).SQLLiteral(); got != "-3" {
		t.Errorf("SQLLiteral = %q", got)
	}
}

func TestHoldsSignConsistency(t *testing.T) {
	for _, op := range AllCmpOps {
		for sign := -1; sign <= 1; sign++ {
			a, b := NewInt(int64(sign)), NewInt(0)
			want := TriCompare(op, a, b) == True
			if got := op.HoldsSign(sign); got != want {
				t.Errorf("%s.HoldsSign(%d) = %v, want %v", op, sign, got, want)
			}
		}
	}
}
