package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
	"repro/internal/solver"
)

// postRaw sends body as JSON and returns status + the raw response
// bytes, for byte-identity assertions the decoding post helper can't
// make.
func postRaw(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data
}

// TestDurableWarmRestart is the tentpole's service-level acceptance
// path: solve once with a disk tier, tear the server down, start a new
// server over the same directory, and the same request is served from
// disk — byte-identical payload plus the served_from: "disk" marker —
// without running the solver again.
func TestDurableWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{CacheDir: dir}
	req := GenerateRequest{DDL: testDDL, Query: testSQL}

	s1, ts1 := newTestServer(t, cfg)
	if warn := s1.DurableWarning(); warn != "" {
		t.Fatalf("unexpected durable warning: %q", warn)
	}
	status, fresh := postRaw(t, ts1.URL+"/v1/generate", req)
	if status != http.StatusOK {
		t.Fatalf("fresh solve: status %d\n%s", status, fresh)
	}
	c1 := s1.Counters()
	if !c1.Durable.Enabled || c1.Durable.Dir != dir {
		t.Fatalf("durable status = %+v, want enabled at %s", c1.Durable, dir)
	}
	if c1.Durable.Counters.Puts == 0 {
		t.Fatal("complete suite was not written through to disk")
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := newTestServer(t, cfg)
	c2 := s2.Counters()
	if c2.Durable.Counters.RecoveredRecords == 0 {
		t.Fatal("restart recovered no records")
	}
	status, warm := postRaw(t, ts2.URL+"/v1/generate", req)
	if status != http.StatusOK {
		t.Fatalf("warm serve: status %d\n%s", status, warm)
	}
	// The disk hit is the fresh payload with exactly the served_from
	// marker spliced in: proves the bytes round-tripped the disk intact.
	want := string(fresh[:len(fresh)-1]) + `,"served_from":"disk"}`
	if string(warm) != want {
		t.Fatalf("disk-served body not byte-identical modulo decoration:\ngot  %s\nwant %s", warm, want)
	}
	var gr GenerateResponse
	if err := json.Unmarshal(warm, &gr); err != nil {
		t.Fatalf("decode warm response: %v", err)
	}
	if gr.ServedFrom != "disk" {
		t.Fatalf("served_from = %q, want disk", gr.ServedFrom)
	}
	c2 = s2.Counters()
	if c2.CacheCounters.DiskHits != 1 || c2.Durable.Counters.Hits != 1 {
		t.Fatalf("disk hit counters: cache_disk_hits=%d disk_hits=%d, want 1/1",
			c2.CacheCounters.DiskHits, c2.Durable.Counters.Hits)
	}

	// The disk hit promoted the entry to memory: the next serve is a
	// memory hit, undecorated and byte-identical to the fresh solve.
	status, warm2 := postRaw(t, ts2.URL+"/v1/generate", req)
	if status != http.StatusOK {
		t.Fatalf("memory serve: status %d", status)
	}
	if !bytes.Equal(warm2, fresh) {
		t.Fatalf("memory-promoted serve differs from the fresh solve:\ngot  %s\nwant %s", warm2, fresh)
	}
	ts2.Close()
	s2.Close()
}

// TestDurableEpochSurvivesRestart: an epoch bump acknowledged before a
// restart keeps invalidating after it — the restarted daemon must not
// serve entries the operator already retired.
func TestDurableEpochSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{CacheDir: dir}
	req := GenerateRequest{DDL: testDDL, Query: testSQL}

	s1, ts1 := newTestServer(t, cfg)
	if status, body := postRaw(t, ts1.URL+"/v1/generate", req); status != http.StatusOK {
		t.Fatalf("fresh solve: status %d\n%s", status, body)
	}
	var bump map[string]int64
	if status, _ := post(t, ts1.URL+"/admin/epoch", struct{}{}, &bump); status != http.StatusOK {
		t.Fatalf("epoch bump failed")
	}
	if bump["epoch"] != 1 {
		t.Fatalf("epoch after bump = %d, want 1", bump["epoch"])
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := newTestServer(t, cfg)
	defer ts2.Close()
	defer s2.Close()
	c := s2.Counters()
	if c.Durable.Counters.Epoch != 1 {
		t.Fatalf("epoch after restart = %d, want 1 (persisted bump lost)", c.Durable.Counters.Epoch)
	}
	status, body := postRaw(t, ts2.URL+"/v1/generate", req)
	if status != http.StatusOK {
		t.Fatalf("post-restart solve: status %d\n%s", status, body)
	}
	if strings.Contains(string(body), `"served_from"`) {
		t.Fatalf("retired entry served from disk after restart:\n%s", body)
	}
	if hits := s2.Counters().CacheCounters.DiskHits; hits != 0 {
		t.Fatalf("disk hits = %d after epoch bump, want 0", hits)
	}
}

// TestDurableUnusableDirDegrades (satellite a): a cache-dir that cannot
// be created degrades the server to memory-only with a warning; it
// never refuses to start, and /statsz reports durable: "disabled".
func TestDurableUnusableDirDegrades(t *testing.T) {
	plain := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A path under a regular file cannot be MkdirAll'd, root or not.
	s, ts := newTestServer(t, Config{CacheDir: filepath.Join(plain, "cache")})
	defer ts.Close()
	defer s.Close()

	if warn := s.DurableWarning(); !strings.Contains(warn, "memory-only") {
		t.Fatalf("DurableWarning = %q, want a memory-only degradation notice", warn)
	}
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stats), `"durable":"disabled"`) {
		t.Fatalf("/statsz does not report durable disabled:\n%s", stats)
	}
	// Degraded is still serving: memory-only, not dead.
	if status, body := postRaw(t, ts.URL+"/v1/generate", GenerateRequest{DDL: testDDL, Query: testSQL}); status != http.StatusOK {
		t.Fatalf("degraded serve: status %d\n%s", status, body)
	}
}

// TestDurableStatusJSONRoundTrip: the Counters JSON round-trips both
// shapes of the durable field — xbench re-decodes /statsz into
// service.Counters, so an asymmetric encoding would break it.
func TestDurableStatusJSONRoundTrip(t *testing.T) {
	for _, c := range []Counters{
		{},
		{Durable: DurableStatus{Enabled: true, Dir: "/tmp/x", Counters: durable.Counters{Hits: 3, Epoch: 2}}},
	} {
		p, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var back Counters
		if err := json.Unmarshal(p, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", p, err)
		}
		if back.Durable != c.Durable {
			t.Fatalf("durable field did not round-trip: got %+v want %+v", back.Durable, c.Durable)
		}
	}
}

// TestFailureBundleCapture: an abandoned kill goal under -failure-dir
// writes a self-contained repro bundle while the request still answers
// 207, and the capture is visible in the counters.
func TestFailureBundleCapture(t *testing.T) {
	fdir := t.TempDir()
	s, ts := newTestServer(t, Config{FailureDir: fdir})
	defer ts.Close()
	defer s.Close()

	defer solver.SetFaultHook(nil)
	solver.SetFaultHook(func(label string, call int64) solver.Fault {
		if strings.Contains(label, "nullify {i.id}") {
			return solver.FaultPanic
		}
		return solver.FaultNone
	})

	status, body := postRaw(t, ts.URL+"/v1/generate", GenerateRequest{DDL: testDDL, Query: testSQL})
	if status != http.StatusMultiStatus {
		t.Fatalf("status %d, want 207 partial\n%s", status, body)
	}
	c := s.Counters()
	if c.BundlesWritten != 1 || c.BundleErrors != 0 {
		t.Fatalf("bundles written=%d errors=%d, want 1/0", c.BundlesWritten, c.BundleErrors)
	}
	entries, err := os.ReadDir(fdir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("failure dir entries = %v (err %v), want exactly one bundle", entries, err)
	}
	b, err := durable.ReadBundle(filepath.Join(fdir, entries[0].Name()))
	if err != nil {
		t.Fatalf("read captured bundle: %v", err)
	}
	if b.Kind != "goal" || !strings.Contains(b.Purpose, "nullify i.id") {
		t.Fatalf("bundle kind/purpose = %q/%q", b.Kind, b.Purpose)
	}
	if !b.FaultInjected {
		t.Fatal("bundle not marked fault-injected despite the active hook")
	}
	if b.Stack == "" || b.SchemaSQL == "" || b.QuerySQL == "" {
		t.Fatalf("bundle incomplete: stack %d bytes, schema %d, query %d",
			len(b.Stack), len(b.SchemaSQL), len(b.QuerySQL))
	}

	// The same failure again must dedupe onto the same bundle dir.
	if status, _ := postRaw(t, ts.URL+"/v1/generate", GenerateRequest{DDL: testDDL, Query: testSQL}); status != http.StatusMultiStatus {
		t.Fatalf("second partial: status %d", status)
	}
	if entries, _ := os.ReadDir(fdir); len(entries) != 1 {
		t.Fatalf("duplicate failure produced %d bundle dirs, want 1", len(entries))
	}
}

// TestHandlerPanicBundle: the finish recover writes a Kind "handler"
// bundle when a handler panics after the request was parsed.
func TestHandlerPanicBundle(t *testing.T) {
	fdir := t.TempDir()
	s := New(Config{FailureDir: fdir})
	defer s.Close()
	sch, q, err := s.prepare(testDDL, testSQL)
	if err != nil {
		t.Fatal(err)
	}
	_, opts := s.clamp(RequestOptions{})
	bs := &bundleScope{sch: sch, q: q, opts: opts, set: true}

	w := httptest.NewRecorder()
	func() {
		defer s.finish(w, func() {}, bs)
		panic("synthetic handler bug")
	}()

	if w.Code != http.StatusInternalServerError {
		t.Fatalf("recovered panic wrote status %d, want 500", w.Code)
	}
	if got := s.Counters(); got.PanicsRecovered != 1 || got.BundlesWritten != 1 {
		t.Fatalf("panics=%d bundles=%d, want 1/1", got.PanicsRecovered, got.BundlesWritten)
	}
	entries, err := os.ReadDir(fdir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("failure dir entries = %v (err %v)", entries, err)
	}
	b, err := durable.ReadBundle(filepath.Join(fdir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind != "handler" || !strings.Contains(b.Error, "synthetic handler bug") || b.Stack == "" {
		t.Fatalf("handler bundle = kind %q, error %q, %d stack bytes", b.Kind, b.Error, len(b.Stack))
	}
}
