package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestRetryAfterJitterBounds: the Retry-After hint is jittered within
// [base, 2*base] seconds of the queue wait — bounded (clients are not
// told to wait forever) but not deterministic (shed clients must not
// re-synchronize into a retry herd).
func TestRetryAfterJitterBounds(t *testing.T) {
	s := New(Config{QueueWait: 4 * time.Second}) // base = 4
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		v, err := strconv.Atoi(s.retryAfterSeconds())
		if err != nil {
			t.Fatalf("non-numeric Retry-After: %v", err)
		}
		if v < 4 || v > 8 {
			t.Fatalf("Retry-After %d outside jitter bounds [4, 8]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatalf("Retry-After never varied across 256 samples: %v", seen)
	}

	// Sub-second queue waits round the base up to 1s → bounds [1, 2].
	s2 := New(Config{QueueWait: 50 * time.Millisecond})
	for i := 0; i < 64; i++ {
		v, _ := strconv.Atoi(s2.retryAfterSeconds())
		if v < 1 || v > 2 {
			t.Fatalf("sub-second Retry-After %d outside [1, 2]", v)
		}
	}
}

// TestDrainQueuedRequests: requests sitting in the admission queue
// when the drain hard-deadline fires are answered with an explicit
// 503 draining + Retry-After — completed or shed, never silently
// dropped and never left hanging.
func TestDrainQueuedRequests(t *testing.T) {
	before := testutil.GoroutineSnapshot()
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 8, QueueWait: time.Minute})

	// Occupy the only execution slot so new requests queue behind it.
	s.sem <- struct{}{}
	released := false
	defer func() {
		if !released {
			<-s.sem
		}
	}()

	const queued = 3
	type outcome struct {
		status int
		kind   string
		retry  string
		err    error
	}
	results := make(chan outcome, queued)
	var wg sync.WaitGroup
	raw, _ := json.Marshal(GenerateRequest{DDL: testDDL, Query: testSQL})
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(raw))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer resp.Body.Close()
			var e ErrorResponse
			data, _ := io.ReadAll(resp.Body)
			_ = json.Unmarshal(data, &e)
			results <- outcome{status: resp.StatusCode, kind: e.Kind, retry: resp.Header.Get("Retry-After")}
		}()
	}
	testutil.WaitUntil(t, 5*time.Second, func() bool { return s.queued.Load() == queued }, "requests to queue")

	// Drain with an already-tiny deadline: the hard-cancel fires while
	// the three requests are still queued.
	drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(drainCtx) }()

	for i := 0; i < queued; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("queued request lost during drain: %v", r.err)
			}
			if r.status != http.StatusServiceUnavailable || r.kind != "draining" {
				t.Fatalf("queued request during drain: got %d/%q, want 503/draining", r.status, r.kind)
			}
			if r.retry == "" {
				t.Fatal("drain-shed 503 must carry Retry-After")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued request hung through the drain hard-deadline")
		}
	}
	wg.Wait()
	if err := <-drainDone; err == nil {
		t.Fatal("drain with queued requests past the deadline must report the hard-cancel path")
	}
	<-s.sem
	released = true
	ts.Close()
	testutil.RequireNoGoroutineLeak(t, before, 2)
}

// TestCacheHTTPRepeatAndEpoch: at the HTTP surface, a repeated
// identical request is served from the suite cache with byte-identical
// bodies, and POST /admin/epoch retires the entry so the next request
// recomputes (still correct).
func TestCacheHTTPRepeatAndEpoch(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	raw, _ := json.Marshal(GenerateRequest{DDL: testDDL, Query: testSQL})
	fetch := func() []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	first := fetch()
	second := fetch()
	if !bytes.Equal(first, second) {
		t.Fatalf("cached response differs from original:\nfirst:  %s\nsecond: %s", first, second)
	}
	c := s.Counters()
	if c.CacheCounters.Hits < 1 || c.CacheCounters.Entries != 1 {
		t.Fatalf("cache counters after repeat: %+v", c.CacheCounters)
	}
	if c.Completed != 2 {
		t.Fatalf("cache hits must still account as completed: %+v", c)
	}

	// Epoch bump retires the entry; the recompute must match.
	resp, err := http.Post(ts.URL+"/admin/epoch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var bump map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&bump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if bump["epoch"] != 1 {
		t.Fatalf("epoch after bump: %d, want 1", bump["epoch"])
	}
	if got := s.Counters().CacheCounters.Entries; got != 0 {
		t.Fatalf("entries after epoch bump: %d, want 0", got)
	}
	// The recompute's datasets must match the library path exactly
	// (Stats carries wall-clock timing, so whole-body byte equality
	// only holds for cache-served repeats, not across fresh solves).
	third := fetch()
	var decoded GenerateResponse
	if err := json.Unmarshal(third, &decoded); err != nil {
		t.Fatal(err)
	}
	requireSameSuite(t, decoded, libraryExpect(t, s, testDDL, testSQL))
	if decoded.ServedBy != "" || decoded.Degraded {
		t.Fatal("standalone responses must not carry fleet decoration")
	}
}
