package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/testutil"
)

// partitionTransport is the fault hook for network partitions: a
// RoundTripper that refuses connections to blocked host:port targets.
// Each node gets its own instance so a partition can be asymmetric
// (A cannot reach B while C still can).
type partitionTransport struct {
	base    http.RoundTripper
	mu      sync.Mutex
	blocked map[string]bool
}

func newPartitionTransport() *partitionTransport {
	return &partitionTransport{
		base:    &http.Transport{MaxIdleConnsPerHost: 16},
		blocked: make(map[string]bool),
	}
}

func (p *partitionTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	p.mu.Lock()
	blocked := p.blocked[r.URL.Host]
	p.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("partition: %s unreachable", r.URL.Host)
	}
	return p.base.RoundTrip(r)
}

func (p *partitionTransport) setBlocked(target string, blocked bool) {
	p.mu.Lock()
	p.blocked[target] = blocked
	p.mu.Unlock()
}

// fleetNode is one in-process fleet member: a NewFleet server on a
// real TCP listener (real sockets, so an abrupt stop behaves like a
// killed process: in-flight connections die, new dials are refused).
type fleetNode struct {
	svc       *Server
	httpSrv   *http.Server
	addr      string
	transport *partitionTransport
	serveDone chan struct{}
	stopOnce  sync.Once
}

// stop kills the node abruptly — listener and all active connections
// closed mid-flight, no drain — the in-process stand-in for kill -9.
// Safe to call from multiple goroutines (the chaos soak races a timer
// against the burst's completion).
func (n *fleetNode) stop() {
	n.stopOnce.Do(func() {
		n.httpSrv.Close()
		<-n.serveDone
		n.svc.Close()
	})
}

// startFleet builds an n-node fleet with fast failure-handling knobs.
func startFleet(t *testing.T, n int) []*fleetNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("fleet listener %d: %v", i, err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		pt := newPartitionTransport()
		svc, err := NewFleet(Config{
			MaxConcurrent:  4,
			MaxQueue:       256,
			QueueWait:      10 * time.Second,
			MaxTimeout:     20 * time.Second,
			MaxGoalTimeout: 5 * time.Second,
			Advertise:      addrs[i],
			Peers:          peers,
			Fleet: &fleet.Config{
				HopTimeout:       2 * time.Second,
				RetryBudget:      2,
				BackoffBase:      time.Millisecond,
				BackoffCap:       10 * time.Millisecond,
				HedgeAfter:       -1, // hedging is unit-tested; keep the soak deterministic
				BreakerThreshold: 2,
				BreakerCooldown:  150 * time.Millisecond,
				HealthInterval:   25 * time.Millisecond,
				Transport:        pt,
			},
		})
		if err != nil {
			t.Fatalf("fleet node %d: %v", i, err)
		}
		node := &fleetNode{
			svc:       svc,
			httpSrv:   &http.Server{Handler: svc.Handler()},
			addr:      addrs[i],
			transport: pt,
			serveDone: make(chan struct{}),
		}
		go func(ln net.Listener) {
			defer close(node.serveDone)
			_ = node.httpSrv.Serve(ln)
		}(listeners[i])
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.stop()
		}
	})
	return nodes
}

// keyOwner computes the advertised address owning (ddl, query) under
// zero-valued request options — the node a forwarded request lands on.
func keyOwner(t *testing.T, s *Server, ddl, query string) string {
	t.Helper()
	sch, q, err := s.prepare(ddl, query)
	if err != nil {
		t.Fatalf("keyOwner prepare: %v", err)
	}
	_, opts := s.clamp(RequestOptions{})
	return s.router.Owner(fleet.ContentKey(sch, q, opts))
}

// fleetQueriesByOwner probes salary-constant variants of the test
// query until every node owns at least perNode of them. Listener ports
// are random, so ownership must be discovered at runtime.
func fleetQueriesByOwner(t *testing.T, nodes []*fleetNode, perNode int) map[string][]string {
	t.Helper()
	byOwner := make(map[string][]string, len(nodes))
	for salary := 50; salary < 400; salary++ {
		q := fmt.Sprintf(`SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > %d`, salary)
		owner := keyOwner(t, nodes[0].svc, testDDL, q)
		if len(byOwner[owner]) < perNode {
			byOwner[owner] = append(byOwner[owner], q)
		}
		done := len(byOwner) == len(nodes)
		for _, qs := range byOwner {
			done = done && len(qs) >= perNode
		}
		if done {
			return byOwner
		}
	}
	t.Fatalf("could not spread %d queries per node over %d nodes", perNode, len(nodes))
	return nil
}

// fleetPost posts query to the given node and returns status, raw
// body, and the decoded response.
func fleetPost(t *testing.T, addr, query string) (int, []byte, GenerateResponse) {
	t.Helper()
	raw, _ := json.Marshal(GenerateRequest{DDL: testDDL, Query: query})
	resp, err := http.Post("http://"+addr+"/v1/generate", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var decoded GenerateResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusMultiStatus {
		if err := json.Unmarshal(body, &decoded); err != nil {
			t.Fatalf("decode (%d): %v\n%s", resp.StatusCode, err, body)
		}
	}
	return resp.StatusCode, body, decoded
}

// TestFleetRoutingAndCacheCoherence: every entry node serves the same
// query with the same bytes — forwarded to the key's ring owner, whose
// cache makes repeat serves byte-identical fleet-wide — and served_by
// names the owner.
func TestFleetRoutingAndCacheCoherence(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet test skipped in -short mode")
	}
	nodes := startFleet(t, 3)
	byOwner := fleetQueriesByOwner(t, nodes, 1)

	for owner, queries := range byOwner {
		query := queries[0]
		expect := libraryExpect(t, nodes[0].svc, testDDL, query)
		// Prime through one entry, then fetch through every node: all
		// three bodies must be the owner's cached bytes, verbatim.
		var bodies [][]byte
		for _, node := range nodes {
			status, body, decoded := fleetPost(t, node.addr, query)
			if status != http.StatusOK {
				t.Fatalf("entry %s query %q: status %d, want 200", node.addr, query, status)
			}
			requireSameSuite(t, decoded, expect)
			if decoded.ServedBy != owner {
				t.Fatalf("served_by %q, want ring owner %q", decoded.ServedBy, owner)
			}
			if decoded.Degraded {
				t.Fatal("healthy fleet must not serve degraded")
			}
			bodies = append(bodies, body)
		}
		for i := 1; i < len(bodies); i++ {
			if !bytes.Equal(bodies[0], bodies[i]) {
				t.Fatalf("entry nodes disagree on cached bytes for %q:\n%s\nvs\n%s", query, bodies[0], bodies[i])
			}
		}
	}

	var forwards, hits int64
	for _, node := range nodes {
		c := node.svc.Counters()
		forwards += c.RouterCounters.Forwards
		hits += c.CacheCounters.Hits
	}
	// 3 queries × 3 entries: each query's two non-owner entries forward.
	if forwards < 6 {
		t.Fatalf("forwards %d, want >= 6", forwards)
	}
	if hits < 3 {
		t.Fatalf("cache hits %d, want >= 3 (repeat serves from the owner's cache)", hits)
	}
}

// TestFleetEpochInvalidation: POST /admin/epoch on the owner retires
// its cached entries; the next request recomputes and still matches
// the library path (a stale-epoch entry is never served).
func TestFleetEpochInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet test skipped in -short mode")
	}
	nodes := startFleet(t, 3)
	byOwner := fleetQueriesByOwner(t, nodes, 1)
	for owner, queries := range byOwner {
		query := queries[0]
		if _, _, decoded := fleetPost(t, nodes[0].addr, query); decoded.ServedBy != owner {
			t.Fatalf("prime: served_by %q, want %q", decoded.ServedBy, owner)
		}
		resp, err := http.Post("http://"+owner+"/admin/epoch", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()

		var ownerNode *fleetNode
		for _, n := range nodes {
			if n.addr == owner {
				ownerNode = n
			}
		}
		missesBefore := ownerNode.svc.Counters().CacheCounters.Misses
		status, _, decoded := fleetPost(t, nodes[1].addr, query)
		if status != http.StatusOK {
			t.Fatalf("post-epoch status %d", status)
		}
		requireSameSuite(t, decoded, libraryExpect(t, nodes[0].svc, testDDL, query))
		if got := ownerNode.svc.Counters().CacheCounters.Misses; got <= missesBefore {
			t.Fatalf("epoch bump must force a recompute: misses %d -> %d", missesBefore, got)
		}
		break // one owner suffices
	}
}

// TestFleetChaosSoak is the fleet acceptance soak: a 3-node fleet
// takes a concurrent burst spread over every entry node while one
// member is killed abruptly mid-burst (listener and in-flight
// connections die without drain) and, afterwards, a network partition
// cuts one survivor off from the other. Requirements: zero lost
// requests (every request to a live node gets a 200), every suite
// matches the library path, dead-owner keys degrade to correct local
// serves, breakers open, and the partition heals back to forwarding —
// with no goroutine leaks once the fleet is shut down.
func TestFleetChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet chaos soak skipped in -short mode")
	}
	before := testutil.GoroutineSnapshot()

	nodes := startFleet(t, 3)
	byOwner := fleetQueriesByOwner(t, nodes, 2)
	var queries []string
	expect := make(map[string]GenerateResponse)
	for _, qs := range byOwner {
		for _, q := range qs {
			queries = append(queries, q)
			expect[q] = libraryExpect(t, nodes[0].svc, testDDL, q)
		}
	}
	victim := nodes[2]
	survivors := []*fleetNode{nodes[0], nodes[1]}

	// --- Healthy burst through every entry node.
	runBurst := func(entries []*fleetNode, clients, perClient int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, clients*perClient)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					query := queries[(c+i)%len(queries)]
					entry := entries[(c+i)%len(entries)]
					raw, _ := json.Marshal(GenerateRequest{DDL: testDDL, Query: query})
					resp, err := http.Post("http://"+entry.addr+"/v1/generate", "application/json", bytes.NewReader(raw))
					if err != nil {
						errs <- fmt.Errorf("lost request to live node %s: %v", entry.addr, err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs <- fmt.Errorf("lost response body: %v", err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("query %q via %s: status %d body %s", query, entry.addr, resp.StatusCode, body)
						return
					}
					var decoded GenerateResponse
					if err := json.Unmarshal(body, &decoded); err != nil {
						errs <- err
						return
					}
					want := expect[query]
					if decoded.Original == nil || decoded.Original.Inserts != want.Original.Inserts || len(decoded.Datasets) != len(want.Datasets) {
						errs <- fmt.Errorf("query %q via %s: suite differs from library path", query, entry.addr)
						return
					}
					for j := range decoded.Datasets {
						if decoded.Datasets[j] != want.Datasets[j] {
							errs <- fmt.Errorf("query %q via %s: dataset %d differs", query, entry.addr, j)
							return
						}
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	runBurst(nodes, 12, 3)

	// --- Kill one member abruptly mid-burst. The burst targets only
	// the survivors as entries (requests to a kill -9'd process are a
	// client-side connection error, not a service loss), but keys owned
	// by the victim keep arriving and must degrade to correct local
	// serves on whichever survivor got them.
	killDelay := time.AfterFunc(30*time.Millisecond, victim.stop)
	defer killDelay.Stop()
	runBurst(survivors, 12, 4)
	victim.stop() // in case the burst finished before the timer
	// A fast machine can finish the whole burst from cache before the
	// kill timer fires; this post-kill burst guarantees victim-owned
	// keys arrive while the victim is down, so the degrade path is
	// exercised deterministically.
	runBurst(survivors, 12, 2)

	var degraded, breakerOpens int64
	for _, n := range survivors {
		c := n.svc.Counters()
		degraded += c.DegradedServes
		breakerOpens += c.RouterCounters.BreakerOpens
	}
	if degraded == 0 {
		t.Fatal("no degraded serve recorded: victim-owned keys must fall back to local solves")
	}
	if breakerOpens == 0 {
		t.Fatal("no breaker opened against the killed node")
	}

	// --- Partition: survivor 0 loses its path to survivor 1. Keys
	// owned by node 1 entering node 0 must degrade, not fail.
	s0, s1 := survivors[0], survivors[1]
	s0.transport.setBlocked(s1.addr, true)
	var s1Query string
	for _, q := range byOwner[s1.addr] {
		s1Query = q
	}
	degradedBefore := s0.svc.Counters().DegradedServes
	status, _, decoded := fleetPost(t, s0.addr, s1Query)
	if status != http.StatusOK {
		t.Fatalf("partitioned entry: status %d, want 200", status)
	}
	requireSameSuite(t, decoded, expect[s1Query])
	if !decoded.Degraded || decoded.ServedBy != s0.addr {
		t.Fatalf("partitioned serve: degraded=%v served_by=%q, want degraded local serve by %s", decoded.Degraded, decoded.ServedBy, s0.addr)
	}
	if got := s0.svc.Counters().DegradedServes; got <= degradedBefore {
		t.Fatalf("degraded_serves did not move across the partition: %d -> %d", degradedBefore, got)
	}

	// --- Heal: the health poll's half-open probe must re-close the
	// breaker and forwarding must resume.
	s0.transport.setBlocked(s1.addr, false)
	// The health poll's next cycle is the half-open probe that re-closes
	// s1's breaker; until then requests keep degrading locally (which is
	// correct), so poll the observable outcome: the serve moves back to
	// the owner without the degraded mark.
	forwardsBefore := s0.svc.router.Counters().Forwards
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		status, _, decoded := fleetPost(t, s0.addr, s1Query)
		if status != http.StatusOK {
			t.Fatalf("post-heal request: status %d, want 200", status)
		}
		requireSameSuite(t, decoded, expect[s1Query])
		return decoded.ServedBy == s1.addr && !decoded.Degraded
	}, "forwarding to resume after partition heal")
	if got := s0.svc.router.Counters().Forwards; got <= forwardsBefore {
		t.Fatalf("forwards did not resume after heal: %d -> %d", forwardsBefore, got)
	}

	// --- Post-mortem: drain the survivors cleanly, assert counter
	// conservation (every admitted request in a terminal bucket), tear
	// everything down, and require no leaked goroutines.
	for _, n := range survivors {
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := n.svc.Drain(drainCtx); err != nil {
			t.Fatalf("survivor drain: %v", err)
		}
		cancel()
		c := n.svc.Counters()
		if got := c.Admitted - (c.Completed + c.Partial + c.Failed + c.Rejected + c.ClientDisconnects); got > 0 {
			t.Fatalf("%d admitted requests unaccounted for on %s: %+v", got, n.addr, c)
		}
		if c.InFlight != 0 {
			t.Fatalf("in-flight after drain on %s: %d", n.addr, c.InFlight)
		}
	}
	for _, n := range nodes {
		n.stop()
	}
	testutil.RequireNoGoroutineLeak(t, before, 3)
}
