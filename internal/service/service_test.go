package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/limits"
	"repro/internal/qtree"
	"repro/internal/solver"
	"repro/internal/sqlparser"
)

const testDDL = `
CREATE TABLE instructor (
	id INT PRIMARY KEY,
	name VARCHAR(20) NOT NULL,
	dept_name VARCHAR(20) NOT NULL,
	salary INT NOT NULL
);
CREATE TABLE teaches (
	id INT NOT NULL,
	course_id INT NOT NULL,
	PRIMARY KEY (id, course_id)
);
`

const testSQL = `SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50`

// newTestServer builds a Server plus an httptest frontend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends body as JSON and returns status + decoded-into out (when
// out is non-nil and the body decodes).
func post(t *testing.T, url string, body any, out any) (int, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode response (%d): %v\n%s", resp.StatusCode, err, data)
		}
	}
	return resp.StatusCode, resp.Header
}

// libraryExpect runs the library pipeline with the exact options the
// server would clamp a zero-valued request onto, returning the wire
// encoding for byte-identical comparison.
func libraryExpect(t *testing.T, s *Server, ddl, query string) GenerateResponse {
	t.Helper()
	sch, err := sqlparser.ParseSchemaLimits(ddl, s.cfg.Limits)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	q, err := qtree.BuildSQL(sch, query)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	_, opts := s.clamp(RequestOptions{})
	suite, err := core.NewGenerator(q, opts).GenerateContext(context.Background())
	if err != nil {
		t.Fatalf("library generate: %v", err)
	}
	return encodeSuite(suite, sch)
}

// requireSameSuite asserts got matches want dataset-for-dataset, byte
// for byte (the SQLInserts scripts are the canonical form).
func requireSameSuite(t *testing.T, got, want GenerateResponse) {
	t.Helper()
	if got.Original == nil || want.Original == nil {
		t.Fatalf("missing original dataset: got %v want %v", got.Original != nil, want.Original != nil)
	}
	if got.Original.Inserts != want.Original.Inserts {
		t.Fatalf("original dataset differs from library path:\nservice: %q\nlibrary: %q", got.Original.Inserts, want.Original.Inserts)
	}
	if len(got.Datasets) != len(want.Datasets) {
		t.Fatalf("dataset count: service %d, library %d", len(got.Datasets), len(want.Datasets))
	}
	for i := range got.Datasets {
		if got.Datasets[i] != want.Datasets[i] {
			t.Fatalf("dataset %d differs from library path:\nservice: %+v\nlibrary: %+v", i, got.Datasets[i], want.Datasets[i])
		}
	}
}

// TestGenerateEndpoint: a well-formed request yields 200 with a
// complete suite byte-identical to the library path under the same
// clamped options.
func TestGenerateEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var got GenerateResponse
	status, _ := post(t, ts.URL+"/v1/generate", GenerateRequest{DDL: testDDL, Query: testSQL}, &got)
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if !got.Complete || len(got.Incomplete) != 0 {
		t.Fatalf("expected complete suite, got complete=%v incomplete=%d", got.Complete, len(got.Incomplete))
	}
	if len(got.Datasets) == 0 {
		t.Fatal("no kill datasets generated")
	}
	requireSameSuite(t, got, libraryExpect(t, s, testDDL, testSQL))

	c := s.Counters()
	if c.Received != 1 || c.Admitted != 1 || c.Completed != 1 {
		t.Errorf("counters after one success: %+v", c)
	}
}

// TestAnalyzeEndpoint: /v1/analyze returns the suite plus a kill
// report with a plausible mutation score.
func TestAnalyzeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got AnalyzeResponse
	status, _ := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{GenerateRequest: GenerateRequest{DDL: testDDL, Query: testSQL}}, &got)
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if got.Mutants == 0 {
		t.Fatal("no mutants in the space")
	}
	if got.Killed == 0 || got.Killed > got.Mutants {
		t.Fatalf("implausible kill count %d of %d", got.Killed, got.Mutants)
	}
	if len(got.ByKind) == 0 {
		t.Fatal("no per-kind kill lines")
	}
}

// TestErrorTaxonomy: each failure class maps to its documented status
// and kind, mirroring the CLI exit codes.
func TestErrorTaxonomy(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	deep := "SELECT x FROM t WHERE " + strings.Repeat("(", 1000) + "x = 1" + strings.Repeat(")", 1000)
	cases := []struct {
		name   string
		body   any
		status int
		kind   string
	}{
		{"malformed JSON", "{not json", http.StatusBadRequest, "malformed"},
		{"unknown field", map[string]any{"ddl": testDDL, "query": testSQL, "bogus": 1}, http.StatusBadRequest, "malformed"},
		{"bad DDL", GenerateRequest{DDL: "CREATE NONSENSE", Query: testSQL}, http.StatusUnprocessableEntity, "parse"},
		{"bad query", GenerateRequest{DDL: testDDL, Query: "SELEC *"}, http.StatusUnprocessableEntity, "parse"},
		{"unsupported OR", GenerateRequest{DDL: testDDL,
			Query: strings.Replace(testSQL, "WHERE ", "WHERE t.x = 1 OR ", 1)}, http.StatusUnprocessableEntity, "unsupported"},
		{"unsupported nested subquery", GenerateRequest{DDL: testDDL,
			Query: "SELECT * FROM instructor i WHERE i.id NOT IN (SELECT t.id FROM teaches t WHERE t.course_id IN (SELECT t2.course_id FROM teaches t2))"}, http.StatusUnprocessableEntity, "unsupported"},
		{"resource limit", GenerateRequest{DDL: testDDL, Query: deep}, http.StatusUnprocessableEntity, "resource-limit"},
		{"bad options", GenerateRequest{DDL: testDDL, Query: testSQL,
			Options: RequestOptions{Parallelism: -4}}, http.StatusUnprocessableEntity, "bad-options"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var raw []byte
			if s, ok := tc.body.(string); ok {
				raw = []byte(s)
			} else {
				var err error
				raw, err = json.Marshal(tc.body)
				if err != nil {
					t.Fatal(err)
				}
			}
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var e ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("decode error body: %v", err)
			}
			if resp.StatusCode != tc.status || e.Kind != tc.kind {
				t.Fatalf("got %d/%q (%s), want %d/%q", resp.StatusCode, e.Kind, e.Error, tc.status, tc.kind)
			}
		})
	}
}

// TestAdversarialNoSolverBudget: a resource-limited request is
// rejected before any solver work happens (zero solver calls in the
// counters' completed/partial buckets and an immediate response).
func TestAdversarialNoSolverBudget(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	deep := "SELECT x FROM t WHERE " + strings.Repeat("NOT ", 1000) + "x = 1"
	start := time.Now()
	status, _ := post(t, ts.URL+"/v1/generate", GenerateRequest{DDL: testDDL, Query: deep}, nil)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", status)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("adversarial rejection took %v; must not consume solver budget", el)
	}
	c := s.Counters()
	if c.Rejected != 1 || c.Completed != 0 || c.Partial != 0 {
		t.Errorf("counters after adversarial reject: %+v", c)
	}
}

// TestClamp: client budgets are clamped onto the ceilings — absent
// selects the ceiling, over-ask is pulled down, modest asks pass, and
// negatives flow through for Validate to reject.
func TestClamp(t *testing.T) {
	s := New(Config{
		MaxTimeout:     10 * time.Second,
		MaxGoalTimeout: 2 * time.Second,
		MaxGoalNodes:   1000,
		MaxSolverNodes: 5000,
		MaxParallelism: 3,
	})
	budget, opts := s.clamp(RequestOptions{})
	if budget != 10*time.Second || opts.GoalTimeout != 2*time.Second ||
		opts.GoalNodeLimit != 1000 || opts.SolverNodeLimit != 5000 || opts.Parallelism != 3 {
		t.Fatalf("zero request must select ceilings: budget=%v opts=%+v", budget, opts)
	}
	if opts.MaxDomainSize != limits.DefaultMaxDomainSize {
		t.Fatalf("domain ceiling %d, want server default %d", opts.MaxDomainSize, limits.DefaultMaxDomainSize)
	}
	budget, opts = s.clamp(RequestOptions{
		TimeoutMS: 3_600_000, GoalTimeoutMS: 3_600_000,
		GoalNodeLimit: 1 << 40, SolverNodeLimit: 1 << 40, Parallelism: 64,
	})
	if budget != 10*time.Second || opts.GoalTimeout != 2*time.Second ||
		opts.GoalNodeLimit != 1000 || opts.SolverNodeLimit != 5000 || opts.Parallelism != 3 {
		t.Fatalf("over-ask must clamp to ceilings: budget=%v opts=%+v", budget, opts)
	}
	budget, opts = s.clamp(RequestOptions{TimeoutMS: 500, GoalTimeoutMS: 100, GoalNodeLimit: 7, Parallelism: 2})
	if budget != 500*time.Millisecond || opts.GoalTimeout != 100*time.Millisecond ||
		opts.GoalNodeLimit != 7 || opts.Parallelism != 2 {
		t.Fatalf("modest ask must pass through: budget=%v opts=%+v", budget, opts)
	}
	_, opts = s.clamp(RequestOptions{Parallelism: -1})
	if opts.Parallelism != -1 {
		t.Fatal("negative options must flow through to Validate, not be silently fixed")
	}
	if err := opts.Validate(); !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("negative parallelism after clamp: got %v, want ErrBadOptions", err)
	}
}

// TestAdmissionShed: with every slot busy and the queue full, a new
// request is shed with 429 + Retry-After within 100ms — never parked
// on an unbounded queue.
func TestAdmissionShed(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1, QueueWait: 2 * time.Second})
	// Occupy the only slot and the only queue seat directly.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	s.queued.Add(1)
	defer s.queued.Add(-1)

	start := time.Now()
	var e ErrorResponse
	status, hdr := post(t, ts.URL+"/v1/generate", GenerateRequest{DDL: testDDL, Query: testSQL}, &e)
	elapsed := time.Since(start)
	if status != http.StatusTooManyRequests || e.Kind != "shed" {
		t.Fatalf("saturated service: got %d/%q, want 429/shed", status, e.Kind)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("shed took %v, must be immediate (<100ms)", elapsed)
	}
	if c := s.Counters(); c.Shed != 1 {
		t.Errorf("shed counter: %+v", c)
	}
}

// TestQueueWaitShed: a queued request that never gets a slot is shed
// after QueueWait, not parked forever.
func TestQueueWaitShed(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 4, QueueWait: 50 * time.Millisecond})
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	start := time.Now()
	status, _ := post(t, ts.URL+"/v1/generate", GenerateRequest{DDL: testDDL, Query: testSQL}, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 after queue wait", status)
	}
	if el := time.Since(start); el < 40*time.Millisecond || el > time.Second {
		t.Fatalf("queue-wait shed after %v, want ~50ms", el)
	}
}

// TestDrainLifecycle: draining flips /readyz to 503 and refuses new
// generate work with 503 while /healthz stays 200; an idle server
// drains cleanly.
func TestDrainLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz before drain: %d", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("idle drain must be clean: %v", err)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", got)
	}
	status, hdr := post(t, ts.URL+"/v1/generate", GenerateRequest{DDL: testDDL, Query: testSQL}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("generate while draining: %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("draining 503 must carry Retry-After")
	}
}

// TestStatszEndpoint: /statsz serves the counters as JSON.
func TestStatszEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/generate", GenerateRequest{DDL: testDDL, Query: testSQL}, nil)
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var c Counters
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatalf("decode statsz: %v", err)
	}
	if c.Received != 1 || c.Completed != 1 || c.InFlight != 0 {
		t.Errorf("statsz counters: %+v", c)
	}
}

// TestBudgetExpiryPartial: a request whose clamped budget expires
// mid-generation gets a 207 partial suite, not a hang or a 500.
func TestBudgetExpiryPartial(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxTimeout: 30 * time.Second})
	// Every solve hangs until canceled, so the 50ms whole-request
	// budget must expire and surface as a flushed partial suite.
	defer solver.SetFaultHook(nil)
	solver.SetFaultHook(func(string, int64) solver.Fault { return solver.FaultSlow })
	var got GenerateResponse
	status, _ := post(t, ts.URL+"/v1/generate",
		GenerateRequest{DDL: testDDL, Query: testSQL, Options: RequestOptions{TimeoutMS: 50}}, &got)
	if status != http.StatusMultiStatus {
		t.Fatalf("status %d, want 207 on budget expiry", status)
	}
	if got.Complete || len(got.Incomplete) == 0 {
		t.Fatalf("budget expiry must flush an incomplete suite: complete=%v incomplete=%d", got.Complete, len(got.Incomplete))
	}
	c := s.Counters()
	if c.Partial != 1 || c.BudgetExpired != 1 {
		t.Errorf("counters after budget expiry: %+v", c)
	}
}
