package service

import (
	"time"

	"repro/internal/core"
	"repro/internal/schema"
)

// RequestOptions is the client-tunable subset of core.Options plus the
// whole-request budget. Every budget field is clamped server-side onto
// the Config ceilings before reaching the generator: a zero (absent)
// field selects the ceiling itself, a positive field is honored up to
// the ceiling, and a negative field is passed through so
// core.Options.Validate rejects it with ErrBadOptions (422) — the
// daemon never silently "fixes" a nonsensical request.
type RequestOptions struct {
	// TimeoutMS bounds the whole request (parse + generate + analyze)
	// in milliseconds. Clamped onto Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// GoalTimeoutMS bounds each kill goal; clamped onto
	// Config.MaxGoalTimeout.
	GoalTimeoutMS int64 `json:"goal_timeout_ms,omitempty"`
	// GoalNodeLimit bounds each kill goal's solver nodes (with the
	// escalating-retry ladder); clamped onto Config.MaxGoalNodes.
	GoalNodeLimit int64 `json:"goal_node_limit,omitempty"`
	// SolverNodeLimit is the hard per-solver-call node ceiling;
	// clamped onto Config.MaxSolverNodes.
	SolverNodeLimit int64 `json:"solver_node_limit,omitempty"`
	// Parallelism is the per-request worker count; clamped onto
	// Config.MaxParallelism.
	Parallelism int `json:"parallelism,omitempty"`
	// FreshValues is the synthetic domain width (0 = library default).
	FreshValues int `json:"fresh_values,omitempty"`
	// NoUnfold disables quantifier unfolding (ablation; the default
	// follows the paper and unfolds).
	NoUnfold bool `json:"no_unfold,omitempty"`
}

// GenerateRequest is the POST /v1/generate body.
type GenerateRequest struct {
	DDL     string         `json:"ddl"`
	Query   string         `json:"query"`
	Options RequestOptions `json:"options"`
}

// AnalyzeRequest is the POST /v1/analyze body: generation inputs plus
// mutation-space switches.
type AnalyzeRequest struct {
	GenerateRequest
	// IncludeFullOuter includes mutations to FULL OUTER JOIN (the
	// paper's Table I excludes them).
	IncludeFullOuter bool `json:"include_full_outer,omitempty"`
	// NoAllJoinOrders restricts join-type mutants to the written join
	// tree instead of every equivalent order.
	NoAllJoinOrders bool `json:"no_all_join_orders,omitempty"`
}

// clampBudget applies the server-side ceiling: absent (0) selects the
// ceiling, anything above it is pulled down, negatives pass through
// for Validate to reject.
func clampBudget(client, ceiling time.Duration) time.Duration {
	if client == 0 || client > ceiling {
		return ceiling
	}
	return client
}

func clampNodes(client, ceiling int64) int64 {
	if client == 0 || client > ceiling {
		return ceiling
	}
	return client
}

func clampInt(client, ceiling int) int {
	if client == 0 || client > ceiling {
		return ceiling
	}
	return client
}

// clamp converts the wire options into (whole-request budget,
// core.Options) under the server's ceilings. The resource-governance
// domain ceiling always comes from the server config — it is not
// client-tunable.
func (s *Server) clamp(ro RequestOptions) (time.Duration, core.Options) {
	budget := clampBudget(time.Duration(ro.TimeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	opts := core.DefaultOptions()
	opts.Unfold = !ro.NoUnfold
	opts.GoalTimeout = clampBudget(time.Duration(ro.GoalTimeoutMS)*time.Millisecond, s.cfg.MaxGoalTimeout)
	opts.GoalNodeLimit = clampNodes(ro.GoalNodeLimit, s.cfg.MaxGoalNodes)
	opts.SolverNodeLimit = clampNodes(ro.SolverNodeLimit, s.cfg.MaxSolverNodes)
	opts.Parallelism = clampInt(ro.Parallelism, s.cfg.MaxParallelism)
	opts.FreshValues = ro.FreshValues
	opts.MaxDomainSize = s.cfg.Limits.MaxDomainSize
	return budget, opts
}

// DatasetJSON carries one generated dataset over the wire: its purpose
// label plus the canonical INSERT script (schema.Dataset.SQLInserts),
// the same bytes the CLI writes — which is what makes the chaos soak's
// byte-identical comparison against the library path meaningful.
type DatasetJSON struct {
	Purpose string `json:"purpose"`
	Inserts string `json:"inserts"`
}

// SkipJSON is a dataset skipped as unsatisfiable (mutant group
// equivalent to the original query).
type SkipJSON struct {
	Purpose string `json:"purpose"`
	Reason  string `json:"reason"`
}

// FailureJSON is one abandoned kill goal from Suite.Incomplete.
type FailureJSON struct {
	Purpose   string `json:"purpose"`
	Reason    string `json:"reason"`
	Attempts  int    `json:"attempts"`
	Nodes     int64  `json:"nodes"`
	ElapsedMS int64  `json:"elapsed_ms"`
	Error     string `json:"error,omitempty"`
}

// GenerateResponse is the POST /v1/generate body on 200 (complete) and
// 207 (partial: Incomplete non-empty, Complete false).
type GenerateResponse struct {
	Complete   bool          `json:"complete"`
	Original   *DatasetJSON  `json:"original,omitempty"`
	Datasets   []DatasetJSON `json:"datasets"`
	Skipped    []SkipJSON    `json:"skipped,omitempty"`
	Incomplete []FailureJSON `json:"incomplete,omitempty"`
	Stats      core.Stats    `json:"stats"`
	// ServedBy names the fleet node that solved (or cached) this
	// response — the key's ring owner on the happy path. Empty when
	// the daemon runs standalone, so single-node bodies are unchanged.
	ServedBy string `json:"served_by,omitempty"`
	// ServedFrom is "disk" when the response was served from the
	// durable cache tier (a crash-recovered or restart-surviving
	// entry). Empty for memory-tier hits and fresh solves, so warm
	// in-memory serves stay byte-identical to the library path.
	ServedFrom string `json:"served_from,omitempty"`
	// Degraded marks a fleet response that was solved locally because
	// the key's owning node was unreachable (breaker open, retries
	// exhausted): correct bytes, reduced cache affinity.
	Degraded bool `json:"degraded,omitempty"`
}

// KindKillsJSON is one mutation class's kill line.
type KindKillsJSON struct {
	Kind   string `json:"kind"`
	Killed int    `json:"killed"`
	Total  int    `json:"total"`
}

// AnalyzeResponse is the POST /v1/analyze body: the generated suite
// plus the kill-matrix summary.
type AnalyzeResponse struct {
	GenerateResponse
	Mutants   int             `json:"mutants"`
	Killed    int             `json:"killed"`
	Survivors []string        `json:"survivors,omitempty"`
	ByKind    []KindKillsJSON `json:"by_kind,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// Kind classifies the failure: "malformed", "parse",
	// "unsupported" (well-formed SQL outside the supported query
	// class), "resource-limit", "bad-options", "shed", "draining",
	// "internal".
	Kind  string `json:"kind"`
	Error string `json:"error"`
}

// encodeSuite converts a core.Suite into wire form. sch renders the
// INSERT scripts.
func encodeSuite(suite *core.Suite, sch *schema.Schema) GenerateResponse {
	resp := GenerateResponse{
		Complete: len(suite.Incomplete) == 0,
		Datasets: make([]DatasetJSON, 0, len(suite.Datasets)),
		Stats:    suite.Stats,
	}
	if suite.Original != nil {
		resp.Original = &DatasetJSON{Purpose: suite.Original.Purpose, Inserts: suite.Original.SQLInserts(sch)}
	}
	for _, ds := range suite.Datasets {
		resp.Datasets = append(resp.Datasets, DatasetJSON{Purpose: ds.Purpose, Inserts: ds.SQLInserts(sch)})
	}
	for _, sk := range suite.Skipped {
		resp.Skipped = append(resp.Skipped, SkipJSON{Purpose: sk.Purpose, Reason: sk.Reason})
	}
	for _, f := range suite.Incomplete {
		fj := FailureJSON{
			Purpose:   f.Purpose,
			Reason:    f.Reason,
			Attempts:  f.Attempts,
			Nodes:     f.Nodes,
			ElapsedMS: f.Elapsed.Milliseconds(),
		}
		if f.Err != nil {
			fj.Error = f.Err.Error()
		}
		resp.Incomplete = append(resp.Incomplete, fj)
	}
	return resp
}
