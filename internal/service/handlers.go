package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"

	"repro/internal/core"
	"repro/internal/limits"
	"repro/internal/mutation"
	"repro/internal/qtree"
	"repro/internal/schema"
	"repro/internal/sqlparser"
)

// maxBodyBytes bounds request bodies before JSON decoding; the DDL and
// query inside are additionally capped by Config.Limits.MaxInputBytes.
const maxBodyBytes = 8 << 20

// writeJSON encodes v with the given status. Encoding errors at this
// point mean the client went away; they are counted, not retried.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.ctr.disconnects.Add(1)
	}
}

// writeError maps a pipeline error to the HTTP taxonomy (see the
// package comment) and writes the ErrorResponse body.
func (s *Server) writeError(w http.ResponseWriter, status int, kind string, err error) {
	if status >= 500 {
		s.ctr.failed.Add(1)
	} else {
		s.ctr.rejected.Add(1)
	}
	s.writeJSON(w, status, ErrorResponse{Kind: kind, Error: err.Error()})
}

// classify maps a generation-pipeline error to (status, kind). It
// mirrors the CLI's exit-code taxonomy: caller errors (bad SQL,
// resource limits, bad options) are 422, everything unexpected is 500.
func classify(err error) (int, string) {
	switch {
	case errors.Is(err, limits.ErrResourceLimit):
		return http.StatusUnprocessableEntity, "resource-limit"
	case errors.Is(err, core.ErrBadOptions):
		return http.StatusUnprocessableEntity, "bad-options"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// admitOrReject runs the shared request preamble: drain refusal (via
// beginRequest, which also registers the request with the drain
// WaitGroup) followed by admission control. On ok the caller must
// defer both s.inflight.Done and s.finish(w, release), in that order,
// so the finish recover fires before the Done.
func (s *Server) admitOrReject(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	s.ctr.received.Add(1)
	if !s.beginRequest() {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		s.writeError(w, http.StatusServiceUnavailable, "draining", errors.New("service: draining, not accepting new work"))
		return nil, false
	}
	release, err := s.admit(r.Context())
	if err != nil {
		s.inflight.Done()
		if errors.Is(err, errShed) {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			s.writeError(w, http.StatusTooManyRequests, "shed", err)
		} else { // client went away while queued
			s.ctr.disconnects.Add(1)
			s.writeError(w, http.StatusRequestTimeout, "disconnected", err)
		}
		return nil, false
	}
	return release, true
}

// finish runs the shared request postamble under defer: slot release,
// drain accounting, and last-resort panic recovery (one crashing
// handler costs one 500, never the process). The caller defers
// inflight.Done separately, registered before finish so it runs after
// the recover.
func (s *Server) finish(w http.ResponseWriter, release func()) {
	if v := recover(); v != nil {
		s.ctr.panics.Add(1)
		s.writeError(w, http.StatusInternalServerError, "internal",
			fmt.Errorf("service: handler panicked: %v\n%s", v, debug.Stack()))
	}
	if s.draining.Load() {
		s.ctr.drained.Add(1)
	}
	release()
}

// decode reads and parses the JSON body into req.
func decode(r *http.Request, w http.ResponseWriter, req any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(req)
}

// prepare parses the DDL and query under the server's resource limits
// and builds the qtree. Returned errors are caller errors (422).
func (s *Server) prepare(ddl, query string) (*schema.Schema, *qtree.Query, error) {
	sch, err := sqlparser.ParseSchemaLimits(ddl, s.cfg.Limits)
	if err != nil {
		return nil, nil, fmt.Errorf("ddl: %w", err)
	}
	stmt, err := sqlparser.ParseQueryLimits(query, s.cfg.Limits)
	if err != nil {
		return nil, nil, fmt.Errorf("query: %w", err)
	}
	q, err := qtree.Build(sch, stmt)
	if err != nil {
		return nil, nil, fmt.Errorf("query: %w", err)
	}
	return sch, q, nil
}

// generate runs the clamped pipeline and maps the outcome onto the
// response taxonomy, writing the response itself. It returns the suite
// and schema for /v1/analyze to extend (nil when a response was
// already written as an error).
func (s *Server) generate(w http.ResponseWriter, r *http.Request, greq GenerateRequest, extend func(ctx context.Context, q *qtree.Query, suite *core.Suite, resp GenerateResponse) (any, error)) {
	sch, q, err := s.prepare(greq.DDL, greq.Query)
	if err != nil {
		status, kind := http.StatusUnprocessableEntity, "parse"
		switch {
		case errors.Is(err, limits.ErrResourceLimit):
			kind = "resource-limit"
		case errors.Is(err, sqlparser.ErrUnsupported):
			// Well-formed SQL outside the supported query class (OR,
			// nested subqueries, HAVING without aggregation, ...) —
			// distinct from a syntax error so clients can tell "fix
			// your SQL" apart from "this class is out of scope".
			kind = "unsupported"
		}
		s.writeError(w, status, kind, err)
		return
	}
	budget, opts := s.clamp(greq.Options)
	ctx, cancel := s.requestContext(r, budget)
	defer cancel()

	suite, err := core.NewGenerator(q, opts).GenerateContext(ctx)
	if ctx.Err() != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.ctr.budgetExpired.Add(1)
	}
	if r.Context().Err() != nil && s.hardCtx.Err() == nil {
		s.ctr.disconnects.Add(1)
	}
	switch {
	case err == nil:
		// complete: fall through
	case errors.Is(err, core.ErrPartialSuite):
		// degraded but valid: flush what we have as 207. Recovered
		// kill-goal panics are surfaced in the counters.
		for _, f := range suite.Incomplete {
			if f.Reason == core.ReasonPanic {
				s.ctr.panics.Add(1)
			}
		}
		s.ctr.partial.Add(1)
		s.writeJSON(w, http.StatusMultiStatus, encodeSuite(suite, sch))
		return
	default:
		status, kind := classify(err)
		s.writeError(w, status, kind, err)
		return
	}

	resp := encodeSuite(suite, sch)
	body := any(resp)
	if extend != nil {
		body, err = extend(ctx, q, suite, resp)
		if err != nil {
			status, kind := classify(err)
			s.writeError(w, status, kind, err)
			return
		}
	}
	s.ctr.completed.Add(1)
	s.writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admitOrReject(w, r)
	if !ok {
		return
	}
	defer s.inflight.Done()
	defer s.finish(w, release)

	var req GenerateRequest
	if err := decode(r, w, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "malformed", err)
		return
	}
	s.generate(w, r, req, nil)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admitOrReject(w, r)
	if !ok {
		return
	}
	defer s.inflight.Done()
	defer s.finish(w, release)

	var req AnalyzeRequest
	if err := decode(r, w, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "malformed", err)
		return
	}
	mopts := mutation.DefaultOptions()
	mopts.IncludeFullOuter = req.IncludeFullOuter
	mopts.AllJoinOrders = !req.NoAllJoinOrders
	s.generate(w, r, req.GenerateRequest, func(ctx context.Context, q *qtree.Query, suite *core.Suite, resp GenerateResponse) (any, error) {
		mutants, err := mutation.Space(q, mopts)
		if err != nil {
			return nil, fmt.Errorf("mutation space: %w", err)
		}
		report, err := mutation.EvaluateContext(ctx, q, mutants, suite.All(), mutation.EvalOptions{Parallelism: 1})
		if err != nil {
			return nil, fmt.Errorf("kill matrix: %w", err)
		}
		s.ctr.addExec(report.Exec)
		a := AnalyzeResponse{
			GenerateResponse: resp,
			Mutants:          len(mutants),
			Killed:           report.KilledCount(),
		}
		for _, mi := range report.Survivors() {
			a.Survivors = append(a.Survivors, mutants[mi].Desc)
		}
		for _, kind := range []mutation.Kind{mutation.KindJoinType, mutation.KindComparison, mutation.KindAggregate} {
			if kk, ok := report.KillsByKind()[kind]; ok {
				a.ByKind = append(a.ByKind, KindKillsJSON{Kind: string(kind), Killed: kk[0], Total: kk[1]})
			}
		}
		return a, nil
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Counters())
}
