package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/fleet"
	"repro/internal/limits"
	"repro/internal/mutation"
	"repro/internal/qtree"
	"repro/internal/schema"
	"repro/internal/sqlparser"
)

// maxBodyBytes bounds request bodies before JSON decoding; the DDL and
// query inside are additionally capped by Config.Limits.MaxInputBytes.
const maxBodyBytes = 8 << 20

// writeJSON encodes v with the given status. Encoding errors at this
// point mean the client went away; they are counted, not retried.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.ctr.disconnects.Add(1)
	}
}

// writeError maps a pipeline error to the HTTP taxonomy (see the
// package comment) and writes the ErrorResponse body.
func (s *Server) writeError(w http.ResponseWriter, status int, kind string, err error) {
	if status >= 500 {
		s.ctr.failed.Add(1)
	} else {
		s.ctr.rejected.Add(1)
	}
	s.writeJSON(w, status, ErrorResponse{Kind: kind, Error: err.Error()})
}

// classify maps a generation-pipeline error to (status, kind). It
// mirrors the CLI's exit-code taxonomy: caller errors (bad SQL,
// resource limits, bad options) are 422, everything unexpected is 500.
func classify(err error) (int, string) {
	switch {
	case errors.Is(err, limits.ErrResourceLimit):
		return http.StatusUnprocessableEntity, "resource-limit"
	case errors.Is(err, core.ErrBadOptions):
		return http.StatusUnprocessableEntity, "bad-options"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// admitOrReject runs the shared request preamble: drain refusal (via
// beginRequest, which also registers the request with the drain
// WaitGroup) followed by admission control. On ok the caller must
// defer both s.inflight.Done and s.finish(w, release), in that order,
// so the finish recover fires before the Done.
func (s *Server) admitOrReject(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	s.ctr.received.Add(1)
	if !s.beginRequest() {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		s.writeError(w, http.StatusServiceUnavailable, "draining", errDraining)
		return nil, false
	}
	release, err := s.admit(r.Context())
	if err != nil {
		s.inflight.Done()
		switch {
		case errors.Is(err, errShed):
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			s.writeError(w, http.StatusTooManyRequests, "shed", err)
		case errors.Is(err, errDraining):
			// The drain hard-deadline fired while this request was
			// queued: answer it explicitly instead of dropping it.
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			s.writeError(w, http.StatusServiceUnavailable, "draining", err)
		default: // client went away while queued
			s.ctr.disconnects.Add(1)
			s.writeError(w, http.StatusRequestTimeout, "disconnected", err)
		}
		return nil, false
	}
	return release, true
}

// bundleScope carries the parsed request through a handler so the
// finish recover can write a failure repro bundle for a handler-level
// panic. Handlers fill it right after prepare/clamp succeed; before
// that point there is nothing reproducible to capture.
type bundleScope struct {
	sch  *schema.Schema
	q    *qtree.Query
	opts core.Options
	set  bool
}

// finish runs the shared request postamble under defer: slot release,
// drain accounting, and last-resort panic recovery (one crashing
// handler costs one 500, never the process). The caller defers
// inflight.Done separately, registered before finish so it runs after
// the recover. bs may be nil for handlers that never carry a
// reproducible request.
func (s *Server) finish(w http.ResponseWriter, release func(), bs *bundleScope) {
	if v := recover(); v != nil {
		stack := debug.Stack()
		s.ctr.panics.Add(1)
		if s.cfg.FailureDir != "" && bs != nil && bs.set {
			s.captureBundle(bs.sch, bs.q, bs.opts, durable.BundleEvent{
				Kind:  "handler",
				Err:   fmt.Sprint(v),
				Stack: string(stack),
			})
		}
		s.writeError(w, http.StatusInternalServerError, "internal",
			fmt.Errorf("service: handler panicked: %v\n%s", v, stack))
	}
	if s.draining.Load() {
		s.ctr.drained.Add(1)
	}
	release()
}

// withFailureHook arms opts with repro-bundle capture when FailureDir
// is configured: every goal the generator abandons (panic, budget,
// cancellation) writes a bundle as it happens, so the evidence exists
// even if the process dies before the response does. The hook captures
// the un-hooked options copy — bundles fingerprint the options, not
// the instrumentation.
func (s *Server) withFailureHook(sch *schema.Schema, q *qtree.Query, opts core.Options) core.Options {
	if s.cfg.FailureDir == "" {
		return opts
	}
	base := opts
	opts.FailureHook = func(f core.Failure) {
		s.captureBundle(sch, q, base, durable.GoalEvent(f))
	}
	return opts
}

// captureBundle writes one failure repro bundle, booking the outcome.
// Capture failures are counted, never surfaced: evidence collection
// must not turn a degraded request into a failed one.
func (s *Server) captureBundle(sch *schema.Schema, q *qtree.Query, opts core.Options, ev durable.BundleEvent) {
	if _, err := durable.WriteBundle(s.cfg.FailureDir, sch, q, opts, ev); err != nil {
		s.ctr.bundleErrs.Add(1)
		return
	}
	s.ctr.bundles.Add(1)
}

// decode reads and parses the JSON body into req.
func decode(r *http.Request, w http.ResponseWriter, req any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(req)
}

// prepare parses the DDL and query under the server's resource limits
// and builds the qtree. Returned errors are caller errors (422).
func (s *Server) prepare(ddl, query string) (*schema.Schema, *qtree.Query, error) {
	sch, err := sqlparser.ParseSchemaLimits(ddl, s.cfg.Limits)
	if err != nil {
		return nil, nil, fmt.Errorf("ddl: %w", err)
	}
	stmt, err := sqlparser.ParseQueryLimits(query, s.cfg.Limits)
	if err != nil {
		return nil, nil, fmt.Errorf("query: %w", err)
	}
	q, err := qtree.Build(sch, stmt)
	if err != nil {
		return nil, nil, fmt.Errorf("query: %w", err)
	}
	return sch, q, nil
}

// prepareStatusKind maps a prepare (parse/build) error onto the 422
// taxonomy.
func prepareStatusKind(err error) (int, string) {
	kind := "parse"
	switch {
	case errors.Is(err, limits.ErrResourceLimit):
		kind = "resource-limit"
	case errors.Is(err, sqlparser.ErrUnsupported):
		// Well-formed SQL outside the supported query class (OR,
		// nested subqueries, HAVING without aggregation, ...) —
		// distinct from a syntax error so clients can tell "fix
		// your SQL" apart from "this class is out of scope".
		kind = "unsupported"
	}
	return http.StatusUnprocessableEntity, kind
}

// generate runs the clamped pipeline and maps the outcome onto the
// response taxonomy, writing the response itself. It returns the suite
// and schema for /v1/analyze to extend (nil when a response was
// already written as an error).
func (s *Server) generate(w http.ResponseWriter, r *http.Request, greq GenerateRequest, bs *bundleScope, extend func(ctx context.Context, q *qtree.Query, suite *core.Suite, resp GenerateResponse) (any, error)) {
	sch, q, err := s.prepare(greq.DDL, greq.Query)
	if err != nil {
		status, kind := prepareStatusKind(err)
		s.writeError(w, status, kind, err)
		return
	}
	budget, opts := s.clamp(greq.Options)
	if bs != nil {
		*bs = bundleScope{sch: sch, q: q, opts: opts, set: true}
	}
	opts = s.withFailureHook(sch, q, opts)
	ctx, cancel := s.requestContext(r, budget)
	defer cancel()

	suite, err := core.NewGenerator(q, opts).GenerateContext(ctx)
	if ctx.Err() != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.ctr.budgetExpired.Add(1)
	}
	if r.Context().Err() != nil && s.hardCtx.Err() == nil {
		s.ctr.disconnects.Add(1)
	}
	switch {
	case err == nil:
		// complete: fall through
	case errors.Is(err, core.ErrPartialSuite):
		// degraded but valid: flush what we have as 207. Recovered
		// kill-goal panics are surfaced in the counters.
		for _, f := range suite.Incomplete {
			if f.Reason == core.ReasonPanic {
				s.ctr.panics.Add(1)
			}
		}
		s.ctr.partial.Add(1)
		s.writeJSON(w, http.StatusMultiStatus, encodeSuite(suite, sch))
		return
	default:
		status, kind := classify(err)
		s.writeError(w, status, kind, err)
		return
	}

	resp := encodeSuite(suite, sch)
	body := any(resp)
	if extend != nil {
		body, err = extend(ctx, q, suite, resp)
		if err != nil {
			status, kind := classify(err)
			s.writeError(w, status, kind, err)
			return
		}
	}
	s.ctr.completed.Add(1)
	s.writeJSON(w, http.StatusOK, body)
}

// account books status into its terminal counter bucket. The cached
// and forwarded generate paths account at write time — not inside the
// solve — so cache hits and relayed peer answers keep the invariant
// that every admitted request lands in exactly one terminal bucket
// (the chaos soak's zero-lost-requests post-mortem).
func (s *Server) account(status int) {
	switch {
	case status == http.StatusOK:
		s.ctr.completed.Add(1)
	case status == http.StatusMultiStatus:
		s.ctr.partial.Add(1)
	case status >= 500:
		s.ctr.failed.Add(1)
	default:
		s.ctr.rejected.Add(1)
	}
}

// writeBody writes pre-marshaled JSON with terminal accounting.
func (s *Server) writeBody(w http.ResponseWriter, status int, payload []byte) {
	s.account(status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(payload); err != nil {
		s.ctr.disconnects.Add(1)
	}
}

// envelope/unenvelope frame a marshaled response body with its HTTP
// status (2 bytes, big-endian) so one cache/singleflight payload
// carries both. Cached entries are always 200s, but singleflight
// followers share whatever the leader produced — 207s and error
// bodies included — and need the status to relay it faithfully.
func envelope(status int, body []byte) []byte {
	out := make([]byte, 2+len(body))
	binary.BigEndian.PutUint16(out, uint16(status))
	copy(out[2:], body)
	return out
}

func unenvelope(p []byte) (int, []byte) {
	if len(p) < 2 {
		// Unreachable for cache-served payloads (checksummed) and
		// leader-produced ones (always framed); kept as a hard stop.
		body, _ := json.Marshal(ErrorResponse{Kind: "internal", Error: "service: malformed cache envelope"})
		return http.StatusInternalServerError, body
	}
	return int(binary.BigEndian.Uint16(p)), p[2:]
}

// decorate splices served_by/served_from/degraded into a marshaled 2xx
// generate body. The fields ride outside the cached bytes so one
// node's cache entry serves every fleet member verbatim; standalone
// memory-tier serves never decorate, keeping those response bodies
// byte-identical to the library path. servedFrom is "disk" on a
// durable-tier hit — the warm-restart marker — and "" otherwise.
func decorate(payload []byte, servedBy, servedFrom string, degraded bool) []byte {
	if servedBy == "" && servedFrom == "" && !degraded {
		return payload
	}
	trimmed := bytes.TrimRight(payload, " \t\r\n")
	if len(trimmed) < 2 || trimmed[0] != '{' || trimmed[len(trimmed)-1] != '}' {
		return payload
	}
	var extra bytes.Buffer
	extra.Write(trimmed[:len(trimmed)-1])
	if servedBy != "" {
		name, _ := json.Marshal(servedBy)
		fmt.Fprintf(&extra, `,"served_by":%s`, name)
	}
	if servedFrom != "" {
		from, _ := json.Marshal(servedFrom)
		fmt.Fprintf(&extra, `,"served_from":%s`, from)
	}
	if degraded {
		extra.WriteString(`,"degraded":true`)
	}
	extra.WriteByte('}')
	return extra.Bytes()
}

// solveGenerate runs the clamped pipeline under ctx and returns the
// response status + body without writing or accounting (terminal
// accounting happens at write time so cached and forwarded serves
// count identically). Side-effect counters that describe this solve —
// budget expiry, disconnects, recovered goal panics — are booked here.
func (s *Server) solveGenerate(ctx context.Context, r *http.Request, sch *schema.Schema, q *qtree.Query, opts core.Options) (int, any) {
	suite, err := core.NewGenerator(q, opts).GenerateContext(ctx)
	if ctx.Err() != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.ctr.budgetExpired.Add(1)
	}
	if r.Context().Err() != nil && s.hardCtx.Err() == nil {
		s.ctr.disconnects.Add(1)
	}
	switch {
	case err == nil:
		return http.StatusOK, encodeSuite(suite, sch)
	case errors.Is(err, core.ErrPartialSuite):
		// degraded but valid: flush what we have as 207. Recovered
		// kill-goal panics are surfaced in the counters.
		for _, f := range suite.Incomplete {
			if f.Reason == core.ReasonPanic {
				s.ctr.panics.Add(1)
			}
		}
		return http.StatusMultiStatus, encodeSuite(suite, sch)
	default:
		status, kind := classify(err)
		return status, ErrorResponse{Kind: kind, Error: err.Error()}
	}
}

// marshalSolve marshals a solveGenerate outcome into its wire bytes.
func marshalSolve(status int, body any) (int, []byte) {
	p, err := json.Marshal(body)
	if err != nil {
		status = http.StatusInternalServerError
		p, _ = json.Marshal(ErrorResponse{Kind: "internal", Error: "service: marshal response: " + err.Error()})
	}
	return status, p
}

// leaderOutcome carries a singleflight leader's non-200 solve out of
// SuiteCache.Do as an error: the leader still answers its own client
// with it, but waiting followers re-compete and solve under their own
// contexts. A 207/500 is shaped by the leader's budget or fault (a
// hop-cancelled forward, a disconnect, a panic) and sharing it would
// poison healthy followers with another request's failure.
type leaderOutcome struct {
	status  int
	payload []byte
}

func (e *leaderOutcome) Error() string { return "service: non-shareable solve result" }

// cachedSolve serves (status, marshaled body) for the content key:
// verified cache hit, singleflight collapse onto a concurrent
// identical solve, or a local solve whose complete-200 result is
// stored for future requests. Only complete 200 suites are cached or
// shared with collapsed followers — partial and error responses are
// returned to their own client but never stored, and a result that
// straddled an epoch bump is not stored either.
func (s *Server) cachedSolve(ctx context.Context, r *http.Request, key fleet.Key, sch *schema.Schema, q *qtree.Query, opts core.Options) (int, []byte, fleet.Tier) {
	env, tier, err := s.cache.DoTier(ctx, key, func() ([]byte, bool, error) {
		status, p := marshalSolve(s.solveGenerate(ctx, r, sch, q, opts))
		if status != http.StatusOK {
			return nil, false, &leaderOutcome{status: status, payload: p}
		}
		return envelope(status, p), true, nil
	})
	if err != nil {
		var lo *leaderOutcome
		if errors.As(err, &lo) {
			return lo.status, lo.payload, fleet.TierNone
		}
		// Only a waiting follower surfaces an error: its own budget
		// died before the leader answered. Solve under the dead
		// context — the generator budget-expires immediately and
		// flushes the same partial 207 the uncached path would have.
		status, p := marshalSolve(s.solveGenerate(ctx, r, sch, q, opts))
		return status, p, fleet.TierNone
	}
	status, p := unenvelope(env)
	return status, p, tier
}

// serveGenerate is the shared /v1/generate + /v1/forward handler. The
// fleet path: derive the canonical content key, forward to the key's
// ring owner unless this request already hopped once (forceLocal or
// the hop header — single-hop routing, loops impossible), and degrade
// to a local solve when every path to the owner is exhausted. The
// local path always runs through the suite cache.
func (s *Server) serveGenerate(w http.ResponseWriter, r *http.Request, forceLocal bool) {
	release, ok := s.admitOrReject(w, r)
	if !ok {
		return
	}
	var bs bundleScope
	defer s.inflight.Done()
	defer s.finish(w, release, &bs)

	var req GenerateRequest
	if err := decode(r, w, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "malformed", err)
		return
	}
	sch, q, err := s.prepare(req.DDL, req.Query)
	if err != nil {
		status, kind := prepareStatusKind(err)
		s.writeError(w, status, kind, err)
		return
	}
	budget, opts := s.clamp(req.Options)
	key := fleet.ContentKey(sch, q, opts)
	bs = bundleScope{sch: sch, q: q, opts: opts, set: true}
	opts = s.withFailureHook(sch, q, opts)
	ctx, cancel := s.requestContext(r, budget)
	defer cancel()

	servedBy, degraded := "", false
	if s.router != nil {
		servedBy = s.router.Self()
		hopped := forceLocal || r.Header.Get(fleet.HopHeader) != ""
		if owner := s.router.Owner(key); !hopped && owner != s.router.Self() {
			// Forwarding (hops, retries, breaker waits) may spend at
			// most half the remaining budget: the degrade guarantee is
			// only worth anything if the local fallback still has
			// budget left when every path to the owner is exhausted.
			fwdCtx, fwdCancel := ctx, context.CancelFunc(func() {})
			if dl, ok := ctx.Deadline(); ok {
				fwdCtx, fwdCancel = context.WithDeadline(ctx, time.Now().Add(time.Until(dl)/2))
			}
			status, payload, ferr := s.forwardGenerate(fwdCtx, owner, req)
			fwdCancel()
			if ferr == nil {
				s.writeBody(w, status, payload)
				return
			}
			// Every path to the owner is exhausted: degrade, don't fail.
			degraded = true
			s.ctr.degraded.Add(1)
		}
	}

	status, payload, tier := s.cachedSolve(ctx, r, key, sch, q, opts)
	servedFrom := ""
	if tier == fleet.TierDisk {
		servedFrom = string(fleet.TierDisk)
	}
	if status == http.StatusOK || status == http.StatusMultiStatus {
		payload = decorate(payload, servedBy, servedFrom, degraded)
	}
	s.writeBody(w, status, payload)
}

// forwardGenerate relays req to the owning peer's /v1/forward.
func (s *Server) forwardGenerate(ctx context.Context, owner string, req GenerateRequest) (int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	return s.router.Forward(ctx, owner, "/v1/forward", body)
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	s.serveGenerate(w, r, false)
}

// handleForward serves a peer-forwarded generate request: identical to
// /v1/generate except it must solve locally — with single-hop routing
// the only loop a buggy or disagreeing ring could create is A→B→A,
// and forcing the second hop local breaks it.
func (s *Server) handleForward(w http.ResponseWriter, r *http.Request) {
	s.serveGenerate(w, r, true)
}

// handleEpoch bumps this node's suite-cache invalidation epoch,
// retiring every cached entry (POST /admin/epoch after a binary or
// semantics change). Epochs are per-node: an operator invalidating a
// fleet bumps each member.
func (s *Server) handleEpoch(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]int64{"epoch": s.cache.BumpEpoch()})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admitOrReject(w, r)
	if !ok {
		return
	}
	var bs bundleScope
	defer s.inflight.Done()
	defer s.finish(w, release, &bs)

	var req AnalyzeRequest
	if err := decode(r, w, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "malformed", err)
		return
	}
	mopts := mutation.DefaultOptions()
	mopts.IncludeFullOuter = req.IncludeFullOuter
	mopts.AllJoinOrders = !req.NoAllJoinOrders
	s.generate(w, r, req.GenerateRequest, &bs, func(ctx context.Context, q *qtree.Query, suite *core.Suite, resp GenerateResponse) (any, error) {
		mutants, err := mutation.Space(q, mopts)
		if err != nil {
			return nil, fmt.Errorf("mutation space: %w", err)
		}
		report, err := mutation.EvaluateContext(ctx, q, mutants, suite.All(), mutation.EvalOptions{Parallelism: 1})
		if err != nil {
			return nil, fmt.Errorf("kill matrix: %w", err)
		}
		s.ctr.addExec(report.Exec)
		a := AnalyzeResponse{
			GenerateResponse: resp,
			Mutants:          len(mutants),
			Killed:           report.KilledCount(),
		}
		for _, mi := range report.Survivors() {
			a.Survivors = append(a.Survivors, mutants[mi].Desc)
		}
		for _, kind := range []mutation.Kind{mutation.KindJoinType, mutation.KindComparison, mutation.KindAggregate} {
			if kk, ok := report.KillsByKind()[kind]; ok {
				a.ByKind = append(a.ByKind, KindKillsJSON{Kind: string(kind), Killed: kk[0], Total: kk[1]})
			}
		}
		return a, nil
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Counters())
}
