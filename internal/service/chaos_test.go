package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/testutil"
)

// Chaos-soak queries. The fault hook matches goal labels by the
// comparison constant, so each faulted behavior gets its own constant
// that no other query's goals mention.
const (
	chaosClean1 = `SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50`
	chaosClean2 = `SELECT t.course_id FROM teaches t WHERE t.course_id > 3`
	chaosPanicQ = `SELECT * FROM instructor i WHERE i.salary > 77` // "< (77)" goal panics
	chaosSlowQ  = `SELECT * FROM instructor i WHERE i.salary > 88` // "< (88)" goal hangs
	chaosDrainQ = `SELECT * FROM instructor i WHERE i.salary > 99` // "< (99)" goal hangs (drain phase)
)

type chaosResult struct {
	query        string
	status       int
	body         GenerateResponse
	err          error
	disconnected bool
}

// TestChaosSoak is the PR's acceptance soak: 32 concurrent clients
// hammer the daemon while the solver fault hook injects panics and
// hangs into targeted kill goals and some clients disconnect
// mid-request. Afterwards the server must drain within its deadline
// (hard-cancelling the deliberately hung requests into 207s), no
// goroutines may leak, no request may be lost (every non-disconnected
// client got a terminal HTTP status), and every 200 must carry a suite
// byte-identical to the library path under the same clamped options.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	before := testutil.GoroutineSnapshot()

	s := New(Config{
		MaxConcurrent:  4,
		MaxQueue:       256,
		QueueWait:      10 * time.Second,
		MaxTimeout:     20 * time.Second,
		MaxGoalTimeout: 5 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	client := &http.Client{}

	// Expected 200 bodies, computed through the library path BEFORE the
	// fault hook goes in.
	expect := map[string]GenerateResponse{
		chaosClean1: libraryExpect(t, s, testDDL, chaosClean1),
		chaosClean2: libraryExpect(t, s, testDDL, chaosClean2),
	}

	defer solver.SetFaultHook(nil)
	solver.SetFaultHook(func(label string, call int64) solver.Fault {
		switch {
		case strings.Contains(label, "< (77)"):
			return solver.FaultPanic
		case strings.Contains(label, "< (88)"):
			return solver.FaultSlow
		case strings.Contains(label, "< (99)"):
			return solver.FaultSlow
		}
		return solver.FaultNone
	})

	// --- Storm phase: 32 clients, 3 requests each. Every 8th client
	// disconnects mid-request.
	const clients, perClient = 32, 3
	queries := []string{chaosClean1, chaosClean2, chaosPanicQ, chaosSlowQ}
	var (
		mu      sync.Mutex
		results []chaosResult
		wg      sync.WaitGroup
	)
	doRequest := func(query string, timeoutMS int64, disconnect bool) chaosResult {
		req := GenerateRequest{DDL: testDDL, Query: query, Options: RequestOptions{GoalTimeoutMS: timeoutMS}}
		raw, _ := json.Marshal(req)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		if disconnect {
			go func() {
				time.Sleep(time.Duration(2+len(query)%5) * time.Millisecond)
				cancel()
			}()
		}
		hr, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/generate", bytes.NewReader(raw))
		hr.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(hr)
		if err != nil {
			return chaosResult{query: query, err: err, disconnected: disconnect}
		}
		defer resp.Body.Close()
		res := chaosResult{query: query, status: resp.StatusCode, disconnected: disconnect}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			res.err = err
			return res
		}
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusMultiStatus {
			res.err = json.Unmarshal(data, &res.body)
		}
		return res
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				query := queries[(c+i)%len(queries)]
				var goalMS int64
				if query == chaosSlowQ {
					goalMS = 100 // bound the injected hang per goal
				}
				res := doRequest(query, goalMS, c%8 == 7)
				mu.Lock()
				results = append(results, res)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	// --- Validate the storm: no lost requests, correct statuses,
	// byte-identical complete suites.
	var sawPanic, sawSlow bool
	for _, r := range results {
		if r.err != nil {
			if r.disconnected {
				continue // deliberate mid-request disconnect
			}
			t.Fatalf("lost request (%s): %v", r.query, r.err)
		}
		switch r.query {
		case chaosClean1, chaosClean2:
			if r.status != http.StatusOK {
				t.Fatalf("clean query %q: status %d, want 200", r.query, r.status)
			}
			requireSameSuite(t, r.body, expect[r.query])
		case chaosPanicQ:
			if r.status != http.StatusMultiStatus {
				t.Fatalf("panic query: status %d, want 207", r.status)
			}
			for _, f := range r.body.Incomplete {
				if f.Reason == core.ReasonPanic {
					sawPanic = true
				}
			}
		case chaosSlowQ:
			if r.status != http.StatusMultiStatus {
				t.Fatalf("slow query: status %d, want 207", r.status)
			}
			if len(r.body.Incomplete) == 0 {
				t.Fatal("slow query 207 without incomplete goals")
			}
			sawSlow = true
		}
	}
	if !sawPanic {
		t.Fatal("no recovered panic surfaced in any 207 body")
	}
	if !sawSlow {
		t.Fatal("no budget-expired slow goal surfaced")
	}

	// --- Drain phase: three requests hang on an injected slow goal
	// (bounded only by the 5s goal ceiling); Drain's 400ms deadline
	// must hard-cancel them into flushed 207s and return promptly.
	drainResults := make(chan chaosResult, 3)
	for i := 0; i < 3; i++ {
		go func() { drainResults <- doRequest(chaosDrainQ, 0, false) }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Counters().InFlight < 3 {
		if time.Now().After(deadline) {
			t.Fatal("drain-phase requests never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	drainStart := time.Now()
	err := s.Drain(drainCtx)
	drainElapsed := time.Since(drainStart)
	if err == nil {
		t.Fatal("drain with hung requests must take the hard-cancel path")
	}
	if drainElapsed > 3*time.Second {
		t.Fatalf("drain took %v, must complete promptly after its 400ms deadline", drainElapsed)
	}
	for i := 0; i < 3; i++ {
		r := <-drainResults
		if r.err != nil {
			t.Fatalf("drained request lost: %v", r.err)
		}
		if r.status != http.StatusMultiStatus {
			t.Fatalf("hard-cancelled request: status %d, want 207 partial flush", r.status)
		}
		if len(r.body.Incomplete) == 0 {
			t.Fatal("hard-cancelled request flushed no incomplete goals")
		}
	}

	// --- Post-mortem: counters consistent, nothing leaked.
	c := s.Counters()
	if c.InFlight != 0 {
		t.Fatalf("in-flight after drain: %d", c.InFlight)
	}
	if c.PanicsRecovered == 0 {
		t.Error("panics_recovered counter never moved")
	}
	if c.Drained < 3 {
		t.Errorf("drained counter %d, want >= 3", c.Drained)
	}
	if c.Admitted == 0 || c.Completed == 0 || c.Partial == 0 {
		t.Errorf("implausible counters after soak: %+v", c)
	}
	if got := c.Admitted - (c.Completed + c.Partial + c.Failed + c.Rejected + c.ClientDisconnects); got > 0 {
		// Every admitted request must have reached a terminal bucket
		// (disconnected clients may race the classification, hence the
		// one-sided check).
		t.Errorf("%d admitted requests unaccounted for: %+v", got, c)
	}

	solver.SetFaultHook(nil)
	client.CloseIdleConnections()
	ts.Close()
	testutil.RequireNoGoroutineLeak(t, before, 2)
}
