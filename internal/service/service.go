// Package service implements xdatad, the HTTP/JSON generation daemon:
// POST /v1/generate turns DDL + query + options into a test suite,
// POST /v1/analyze additionally runs the mutation kill matrix, and
// /healthz, /readyz, /statsz expose liveness, drain state, and service
// counters. The server wraps the library pipeline (sqlparser → qtree →
// core → mutation) in the robustness machinery a long-running multi-
// tenant process needs and the library deliberately does not impose:
//
//   - Bounded admission: at most Config.MaxConcurrent requests solve at
//     once (semaphore sized from GOMAXPROCS by default) with a bounded
//     wait queue behind it. Overflow is shed immediately with 429 +
//     Retry-After — never queued forever — so saturation degrades
//     latency for admitted work, not availability.
//   - Server-side budget clamping: client-supplied timeouts and node
//     budgets are clamped onto the operator's hard ceilings before they
//     reach core.Options, so no request can monopolize a worker.
//   - Per-request deadlines: the clamped budget becomes a context
//     deadline flowing into solver.SolveContext; client disconnects
//     cancel the same context.
//   - Resource governance: limits.Limits (byte caps, parse depth,
//     schema cardinality, domain width) reject adversarial inputs with
//     422 before any solver budget is spent.
//   - Fault isolation: kill-goal panics are already confined to
//     Suite.Incomplete entries by core; the handler adds a last-resort
//     recover so even a handler-level panic costs one 500, not the
//     process.
//   - Graceful drain: Drain flips /readyz to 503, lets in-flight
//     requests finish until the drain deadline, then hard-cancels them
//     so they budget-expire and flush partial suites (207).
//
// The HTTP status taxonomy mirrors the xdata CLI's exit codes
// (0 complete, 1 fatal, 2 usage, 3 partial):
//
//	200 complete suite            (CLI exit 0)
//	207 partial suite flushed     (CLI exit 3, ErrPartialSuite)
//	400 malformed request JSON    (HTTP-only)
//	422 caller error: SQL parse, sqlparser.ErrUnsupported,
//	    limits.ErrResourceLimit,
//	    core.ErrBadOptions        (CLI exit 2)
//	429 admission shed, Retry-After set (HTTP-only)
//	500 internal fault            (CLI exit 1)
//	503 draining                  (HTTP-only, /readyz and late arrivals)
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/limits"
)

// Config tunes the daemon. The zero value of any field selects the
// documented default; Normalize applies them.
type Config struct {
	// MaxConcurrent is the number of requests allowed to run the
	// generation pipeline simultaneously (0 = runtime.GOMAXPROCS(0)).
	MaxConcurrent int
	// MaxQueue bounds how many requests may wait for an execution slot
	// (0 = 2*MaxConcurrent). A request arriving with the queue full is
	// shed immediately with 429.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot
	// before being shed with 429 (0 = 500ms).
	QueueWait time.Duration
	// MaxTimeout is the hard ceiling on the whole-request budget; the
	// client's timeout_ms is clamped onto it (0 = 30s).
	MaxTimeout time.Duration
	// MaxGoalTimeout caps the client's per-goal timeout
	// (0 = MaxTimeout).
	MaxGoalTimeout time.Duration
	// MaxGoalNodes caps the client's per-goal solver node budget
	// (0 = 1<<22).
	MaxGoalNodes int64
	// MaxSolverNodes caps the client's hard per-call node ceiling
	// (0 = 1<<24).
	MaxSolverNodes int64
	// MaxParallelism caps the client's per-request worker count
	// (0 = MaxConcurrent: one saturated request may use every slot's
	// worth of CPU, but admission keeps the aggregate bounded).
	MaxParallelism int
	// Limits govern input resources: byte caps, parser recursion
	// depth, schema cardinality, candidate-domain width. The zero
	// value selects limits.Default(); use limits.Unlimited() only for
	// trusted single-tenant deployments.
	Limits limits.Limits
	// DrainTimeout bounds Drain's wait for in-flight requests before
	// hard-cancelling them (0 = 10s). Kept as the default used by
	// cmd/xdatad; Drain itself takes a context.
	DrainTimeout time.Duration

	// CacheDir, when set, puts a crash-recoverable disk tier
	// (internal/durable) under the suite cache: cached suites, and the
	// invalidation epoch, survive restarts, so a kill -9'd daemon
	// rejoins warm. An unusable directory degrades the server to
	// memory-only with a startup warning (DurableWarning) — never a
	// startup error. Byte cap: Limits.MaxDiskCacheBytes.
	CacheDir string
	// FailureDir, when set, enables failure repro bundles: every
	// abandoned kill goal and recovered handler panic writes a
	// self-contained bundle (schema DDL, query SQL, options, stack)
	// there, replayable with `xdata -replay <bundle>`.
	FailureDir string

	// Advertise is this node's fleet address ("host:port") as peers
	// reach it. It names the node on the consistent-hash ring and is
	// stamped into served_by response fields. Only read by NewFleet;
	// a New server is always standalone.
	Advertise string
	// Peers are the other fleet members' advertised addresses.
	Peers []string
	// Fleet optionally tunes the router (retry ladder, hedging,
	// breaker, health-poll interval, transport injection for partition
	// tests). Self and Peers inside it are overwritten from Advertise
	// and Peers above; nil selects the fleet.Config defaults.
	Fleet *fleet.Config
}

// Normalize fills zero fields with their documented defaults and
// returns the result.
func (c Config) Normalize() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 500 * time.Millisecond
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxGoalTimeout <= 0 {
		c.MaxGoalTimeout = c.MaxTimeout
	}
	if c.MaxGoalNodes <= 0 {
		c.MaxGoalNodes = 1 << 22
	}
	if c.MaxSolverNodes <= 0 {
		c.MaxSolverNodes = 1 << 24
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = c.MaxConcurrent
	}
	if c.Limits == (limits.Limits{}) {
		c.Limits = limits.Default()
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Counters is a point-in-time snapshot of the service counters exposed
// at /statsz and consumed by the xbench trajectory. All fields are
// monotonic over a server's lifetime.
type Counters struct {
	// Received counts requests that reached /v1/generate or
	// /v1/analyze (including those later shed or rejected).
	Received int64 `json:"received"`
	// Admitted counts requests that acquired an execution slot.
	Admitted int64 `json:"admitted"`
	// Shed counts requests rejected 429 by admission control.
	Shed int64 `json:"shed"`
	// Rejected counts caller errors (400/422).
	Rejected int64 `json:"rejected"`
	// Completed counts 200 responses (complete suites).
	Completed int64 `json:"completed"`
	// Partial counts 207 responses (partial suites flushed).
	Partial int64 `json:"partial"`
	// Failed counts 500 responses.
	Failed int64 `json:"failed"`
	// PanicsRecovered counts kill-goal panics isolated into
	// Suite.Incomplete entries plus handler-level panics recovered
	// into 500s.
	PanicsRecovered int64 `json:"panics_recovered"`
	// BudgetExpired counts requests whose clamped whole-request budget
	// expired (deadline exceeded) before the suite completed.
	BudgetExpired int64 `json:"budget_expired"`
	// ClientDisconnects counts requests whose client went away before
	// the response was written.
	ClientDisconnects int64 `json:"client_disconnects"`
	// Drained counts in-flight requests that completed while the
	// server was draining.
	Drained int64 `json:"drained"`
	// Draining reports whether the server is currently draining
	// (mirrors /readyz).
	Draining bool `json:"draining"`
	// InFlight is the number of requests currently holding an
	// execution slot.
	InFlight int64 `json:"in_flight"`
	// Engine aggregates the executor counters of every kill-matrix
	// evaluation served by /v1/analyze: compiled vs interpreted runs,
	// hash-join and nested-loop node executions, and family
	// prefix-cache hits.
	Engine engine.ExecCounts `json:"engine"`
	// DegradedServes counts fleet requests solved locally because every
	// path to the key's owning node was exhausted (breaker open,
	// retries spent): correct answers, reduced cache affinity.
	DegradedServes int64 `json:"degraded_serves"`
	// BundlesWritten/BundleErrors count failure repro bundles captured
	// under Config.FailureDir (goal abandonments and handler panics)
	// and capture attempts that failed. Zero when FailureDir is unset.
	BundlesWritten int64 `json:"bundles_written"`
	BundleErrors   int64 `json:"bundle_errors"`
	// Durable reports the disk cache tier: the literal string
	// "disabled" when no CacheDir is configured or the directory was
	// unusable, else an object with the directory and the durable
	// store's counters.
	Durable DurableStatus `json:"durable"`
	// The embedded fleet counters flatten into /statsz: cache_hits,
	// cache_evictions, ... from the suite cache; forwards, hedges,
	// breaker_opens, ... from the router (zero when standalone).
	fleet.CacheCounters
	fleet.RouterCounters
}

// DurableStatus is the /statsz image of the disk tier. It marshals to
// the literal string "disabled" when the tier is off (the satellite
// contract operators probe for), else to {"dir": ..., "counters":
// {...}}; it unmarshals both shapes so xbench can round-trip Counters.
type DurableStatus struct {
	Enabled  bool
	Dir      string
	Counters durable.Counters
}

// durableStatusJSON is the enabled wire shape.
type durableStatusJSON struct {
	Dir      string           `json:"dir"`
	Counters durable.Counters `json:"counters"`
}

func (d DurableStatus) MarshalJSON() ([]byte, error) {
	if !d.Enabled {
		return []byte(`"disabled"`), nil
	}
	return json.Marshal(durableStatusJSON{Dir: d.Dir, Counters: d.Counters})
}

func (d *DurableStatus) UnmarshalJSON(p []byte) error {
	if string(p) == `"disabled"` || string(p) == "null" {
		*d = DurableStatus{}
		return nil
	}
	var o durableStatusJSON
	if err := json.Unmarshal(p, &o); err != nil {
		return err
	}
	*d = DurableStatus{Enabled: true, Dir: o.Dir, Counters: o.Counters}
	return nil
}

// counters is the live atomic backing for Counters.
type counters struct {
	received, admitted, shed, rejected atomic.Int64
	completed, partial, failed         atomic.Int64
	panics, budgetExpired, disconnects atomic.Int64
	drained, inFlight, degraded        atomic.Int64
	bundles, bundleErrs                atomic.Int64
	engine                             engine.ExecStats
}

// addExec folds one kill-matrix evaluation's engine counters into the
// service totals.
func (c *counters) addExec(e engine.ExecCounts) {
	c.engine.CompiledRuns.Add(e.CompiledRuns)
	c.engine.InterpretedRuns.Add(e.InterpretedRuns)
	c.engine.CompiledBatches.Add(e.CompiledBatches)
	c.engine.HashJoins.Add(e.HashJoins)
	c.engine.NestedLoopJoins.Add(e.NestedLoopJoins)
	c.engine.FamilyPrefixHits.Add(e.FamilyPrefixHits)
}

// Server is the xdatad HTTP service. Create with New, mount via
// Handler, stop via Drain.
type Server struct {
	cfg Config
	mux *http.ServeMux

	sem    chan struct{} // execution slots; len == in-flight
	queued atomic.Int64  // requests waiting behind the semaphore

	// drainMu orders request registration against Drain: beginRequest
	// holds the read lock across {draining check, inflight.Add}, Drain
	// sets draining under the write lock, so no request can slip into
	// the WaitGroup after Drain starts waiting (the documented
	// Add-from-zero-concurrent-with-Wait misuse).
	drainMu  sync.RWMutex
	draining atomic.Bool
	inflight sync.WaitGroup

	// hardCtx is cancelled by Drain once the drain deadline passes:
	// every in-flight request context is linked to it, so cancellation
	// budget-expires the remaining goals and the handlers flush 207s.
	hardCtx    context.Context
	hardCancel context.CancelFunc

	// cache is the cross-request suite cache (always present; its byte
	// cap comes from Config.Limits.MaxCacheBytes). router is non-nil
	// only on fleet-mode servers built with NewFleet.
	cache  *fleet.SuiteCache
	router *fleet.Router

	// store is the disk tier under cache; nil when Config.CacheDir is
	// unset or the directory was unusable (durableWarn records why —
	// the server degrades to memory-only, it never refuses to start).
	store       *durable.Store
	durableWarn string

	ctr counters
}

// New builds a standalone Server from cfg (normalized copy; cfg is not
// retained). Standalone servers still run the suite cache and serve
// /v1/forward (as a plain local generate) and /admin/epoch.
func New(cfg Config) *Server {
	cfg = cfg.Normalize()
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		cache: fleet.NewSuiteCache(int64(cfg.Limits.MaxCacheBytes)),
	}
	if cfg.CacheDir != "" {
		store, err := durable.Open(cfg.CacheDir, durable.Options{MaxBytes: cfg.Limits.MaxDiskCacheBytes})
		if err != nil {
			// Degrade, don't die: a bad -cache-dir costs warmth, not
			// availability. The warning surfaces once at startup
			// (cmd/xdatad logs DurableWarning) and /statsz reports
			// durable: "disabled".
			s.durableWarn = fmt.Sprintf("disk cache disabled, running memory-only: %v", err)
		} else {
			s.store = store
			s.cache.AttachDurable(durableAdapter{store})
		}
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	s.mux.HandleFunc("POST /v1/forward", s.handleForward)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /admin/epoch", s.handleEpoch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

// NewFleet builds a fleet-mode Server: New plus a router over
// cfg.Advertise and cfg.Peers. Generate requests whose content key is
// owned by a peer are forwarded there; peer failures degrade to a
// local solve. The caller must Close the server when done with it (in
// addition to Drain) to stop the router's health poller.
func NewFleet(cfg Config) (*Server, error) {
	s := New(cfg)
	fc := fleet.Config{}
	if s.cfg.Fleet != nil {
		fc = *s.cfg.Fleet
	}
	fc.Self = s.cfg.Advertise
	fc.Peers = s.cfg.Peers
	router, err := fleet.NewRouter(fc)
	if err != nil {
		return nil, err
	}
	s.router = router
	return s, nil
}

// Close releases background resources (the fleet router's health
// poller and idle connections). It does not drain; call Drain first
// for a graceful stop. Safe on standalone servers and safe to call
// more than once.
func (s *Server) Close() {
	if s.router != nil {
		s.router.Close()
	}
	if s.store != nil {
		// Crash-only: this releases file descriptors, it flushes nothing
		// recovery needs. kill -9 instead of Close loses no promises.
		s.store.Close()
	}
}

// DurableWarning returns the startup degradation message when a
// configured CacheDir could not be used ("" when the disk tier is
// running or was never requested). cmd/xdatad logs it once at startup.
func (s *Server) DurableWarning() string { return s.durableWarn }

// durableAdapter bridges *durable.Store to fleet.DurableTier: the
// fleet cache speaks single opaque payloads, the store keeps the HTTP
// status as its own field, so the adapter applies the same 2-byte
// big-endian status envelope the cache payloads already use. Store
// errors are swallowed — the tier is a cache of a cache.
type durableAdapter struct{ store *durable.Store }

func (d durableAdapter) Get(key string) ([]byte, bool) {
	status, body, ok := d.store.Get(key)
	if !ok {
		return nil, false
	}
	return envelope(status, body), true
}

func (d durableAdapter) Put(key string, payload []byte) {
	if len(payload) < 2 {
		return // malformed envelope; nothing worth persisting
	}
	status, body := unenvelope(payload)
	d.store.Put(key, status, body)
}

func (d durableAdapter) Delete(key string) { d.store.Delete(key) }

func (d durableAdapter) Epoch() int64 { return d.store.Epoch() }

func (d durableAdapter) SetEpoch(epoch int64) { _ = d.store.SetEpoch(epoch) }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Config returns the normalized configuration the server runs with.
func (s *Server) Config() Config { return s.cfg }

// Counters snapshots the service counters.
func (s *Server) Counters() Counters {
	c := Counters{
		Received:          s.ctr.received.Load(),
		Admitted:          s.ctr.admitted.Load(),
		Shed:              s.ctr.shed.Load(),
		Rejected:          s.ctr.rejected.Load(),
		Completed:         s.ctr.completed.Load(),
		Partial:           s.ctr.partial.Load(),
		Failed:            s.ctr.failed.Load(),
		PanicsRecovered:   s.ctr.panics.Load(),
		BudgetExpired:     s.ctr.budgetExpired.Load(),
		ClientDisconnects: s.ctr.disconnects.Load(),
		Drained:           s.ctr.drained.Load(),
		Draining:          s.draining.Load(),
		InFlight:          s.ctr.inFlight.Load(),
		Engine:            s.ctr.engine.Counts(),
		DegradedServes:    s.ctr.degraded.Load(),
		BundlesWritten:    s.ctr.bundles.Load(),
		BundleErrors:      s.ctr.bundleErrs.Load(),
	}
	c.CacheCounters = s.cache.Counters()
	if s.router != nil {
		c.RouterCounters = s.router.Counters()
	}
	if s.store != nil {
		dc := s.store.Counters()
		// cache_corrupt_drops is the whole tiered cache's corruption
		// tally: the memory share is folded in by the fleet cache, the
		// disk share comes from the store.
		c.CacheCounters.CorruptDrops += dc.CorruptDrops
		c.Durable = DurableStatus{Enabled: true, Dir: s.store.Dir(), Counters: dc}
	}
	return c
}

// errShed is returned by admit when the request must be rejected 429.
var errShed = fmt.Errorf("service: overloaded, request shed")

// errDraining is returned by admit when the drain hard-deadline fires
// while the request is still queued: the request is shed with 503 +
// Retry-After, never silently dropped.
var errDraining = fmt.Errorf("service: draining, not accepting new work")

// beginRequest registers the request with the drain machinery: it
// refuses (false) when the server is draining, otherwise adds the
// request to the in-flight WaitGroup. The read lock makes the
// check-and-add atomic with respect to Drain. Every true return must
// be paired with exactly one inflight.Done.
func (s *Server) beginRequest() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	return true
}

// admit acquires an execution slot. The fast path is non-blocking; if
// every slot is busy the request joins the bounded wait queue and
// blocks up to Config.QueueWait. A full queue or an expired wait sheds
// the request immediately (errShed → 429 + Retry-After); a cancelled
// ctx returns its error. The returned release function must be called
// exactly once after the request finishes.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	release = func() {
		s.ctr.inFlight.Add(-1)
		<-s.sem
	}
	// Fast path: a slot is free right now.
	select {
	case s.sem <- struct{}{}:
		s.ctr.admitted.Add(1)
		s.ctr.inFlight.Add(1)
		return release, nil
	default:
	}
	// Bounded queue: shed instead of waiting when it is full. The
	// acceptance bar is an immediate 429 (well under 100ms) at
	// saturation — no unbounded queueing.
	if n := s.queued.Add(1); n > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.ctr.shed.Add(1)
		return nil, errShed
	}
	defer s.queued.Add(-1)
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		s.ctr.admitted.Add(1)
		s.ctr.inFlight.Add(1)
		return release, nil
	case <-timer.C:
		s.ctr.shed.Add(1)
		return nil, errShed
	case <-s.hardCtx.Done():
		// The drain hard-deadline fired while this request was queued.
		// In-flight solvers are being cancelled; a request that never
		// got a slot gets an explicit 503, not silence: queued work is
		// always answered, either by completing or by this shed.
		return nil, errDraining
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// requestContext derives the per-request context: the clamped whole-
// request budget becomes a deadline on top of the client's own request
// context (so disconnects cancel it), and the server's drain hard-
// cancel is linked in via context.AfterFunc. The returned cancel
// releases everything and must be deferred.
func (s *Server) requestContext(r *http.Request, budget time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	stop := context.AfterFunc(s.hardCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// retryAfterSeconds is the Retry-After hint attached to 429/503
// responses: the queue wait rounded up to a whole second, plus uniform
// jitter of up to the same amount (value in [base, 2*base]). Without
// the jitter every client shed by the same overload retries on the
// same deterministic tick and re-creates the thundering herd the shed
// was protecting against.
func (s *Server) retryAfterSeconds() string {
	base := int(s.cfg.QueueWait / time.Second)
	if s.cfg.QueueWait%time.Second != 0 || base == 0 {
		base++
	}
	return strconv.Itoa(base + rand.Intn(base+1))
}

// Drain gracefully shuts the service down: new generate/analyze
// requests are refused with 503 (and /readyz flips to 503 so load
// balancers stop routing), in-flight requests run to completion, and
// when ctx expires first the remaining requests are hard-cancelled so
// they budget-expire and flush partial suites. Drain returns once
// every in-flight request has finished; the returned error is ctx's
// error when the hard-cancel path was taken, nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.hardCancel()
		<-done // bounded: every request context is now cancelled
		return ctx.Err()
	}
}
