package randql

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mutation"
	"repro/internal/qtree"
	"repro/internal/refeval"
	"repro/internal/schema"
	"repro/internal/solver"
)

// maxDiffMutants bounds the number of mutants the differential oracle
// cross-checks per (case, dataset) pair; a deterministic stride sample
// keeps large mutant spaces cheap while still exercising every kind.
const maxDiffMutants = 12

// GoalTimeout is the per-kill-goal wall-clock budget applied by
// CheckCompleteness (0 = unlimited; the per-solve node/time budgets
// still apply). The nightly soak sets it (via the -randql.goal-timeout
// test flag or the randql CLI's -goal-timeout flag) so one pathological
// goal bounds a case instead of stalling the whole run; exhausted goals
// are counted as BudgetExceeded, like per-solve limits.
var GoalTimeout time.Duration

// DiffOne is the differential oracle for one (case, dataset) pair: the
// query — and a deterministic sample of its mutant plans — is evaluated
// by both the execution engine and the independent reference evaluator,
// and any result-multiset divergence is an error carrying the full
// reproducer.
func DiffOne(c *Case, ds *schema.Dataset) error {
	if err := diffPlan(c, engine.NewPlan(c.Query), ds, "original query"); err != nil {
		return err
	}
	if !joinConnected(c.Query) {
		// The mutant space is only defined over connected join graphs
		// (cross products have no join to mutate); the original-query
		// diff above is the whole oracle for such cases.
		return nil
	}
	mutants, err := mutation.Space(c.Query, mutation.DefaultOptions())
	if err != nil {
		return fmt.Errorf("randql: mutant space for seed %d: %w\n%s", c.Seed, err, c.Repro(ds))
	}
	stride := 1
	if len(mutants) > maxDiffMutants {
		stride = len(mutants)/maxDiffMutants + 1
	}
	for i := 0; i < len(mutants); i += stride {
		m := mutants[i]
		if err := diffPlan(c, m.Plan, ds, fmt.Sprintf("mutant %s (%s)", m.Key, m.Kind)); err != nil {
			return err
		}
	}
	return nil
}

// diffPlan compares one plan across both evaluators.
func diffPlan(c *Case, p *engine.Plan, ds *schema.Dataset, what string) error {
	er, eerr := p.Run(ds)
	rr, rerr := refeval.EvalPlan(p.Query, p.Tree, p.Preds, p.Subs, p.Aggs, p.Having, ds)
	if eerr != nil || rerr != nil {
		return fmt.Errorf("randql: seed %d: %s: engine err=%v, refeval err=%v\n%s",
			c.Seed, what, eerr, rerr, c.Repro(ds))
	}
	if len(er.Cols) != len(rr.Cols) {
		return fmt.Errorf("randql: seed %d: %s: arity mismatch: engine %d cols %v, refeval %d cols %v\n%s",
			c.Seed, what, len(er.Cols), er.Cols, len(rr.Cols), rr.Cols, c.Repro(ds))
	}
	em, rm := er.Multiset(), rr.Multiset()
	if !multisetEqual(em, rm) {
		return fmt.Errorf("randql: seed %d: %s: result multisets diverge\nengine (%d rows):\n%s\nrefeval (%d rows):\n%s\n%s",
			c.Seed, what, len(er.Rows), er, len(rr.Rows), rr, c.Repro(ds))
	}
	return nil
}

// joinConnected reports whether the query's occurrences form a single
// connected component under equivalence classes and join predicates —
// the precondition for the mutant space (cross products have no join
// semantics to mutate).
func joinConnected(q *qtree.Query) bool {
	if len(q.Occs) <= 1 {
		return true
	}
	comp := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if comp[x] == "" || comp[x] == x {
			comp[x] = x
			return x
		}
		comp[x] = find(comp[x])
		return comp[x]
	}
	union := func(a, b string) { comp[find(a)] = find(b) }
	for _, ec := range q.Classes {
		names := ec.OccNames()
		for i := 1; i < len(names); i++ {
			union(names[0], names[i])
		}
	}
	for _, p := range q.JoinPreds() {
		for i := 1; i < len(p.Occs); i++ {
			union(p.Occs[0], p.Occs[i])
		}
	}
	roots := map[string]bool{}
	for _, o := range q.Occs {
		roots[find(o.Name)] = true
	}
	return len(roots) == 1
}

func multisetEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// CompletenessResult reports one suite-completeness check: how the
// generated suite fared against the full mutant space, with surviving
// mutants split into suspected-equivalent (the random equivalence
// checker found no witness) and confirmed non-equivalent (a witness
// dataset distinguishes mutant from original — a completeness bug).
type CompletenessResult struct {
	Mutants  int
	Killed   int
	Skipped  int
	Datasets int
	// BudgetExceeded is set when the constraint solver ran out of its
	// per-case node/time budget before the suite could be generated.
	// Random queries occasionally hit pathological solver instances
	// (e.g. arithmetic join chains over repeated relations); the harness
	// counts these rather than failing, and the test asserts they stay
	// rare.
	BudgetExceeded bool
	// SuspectedEquivalent holds survivor descriptions the equivalence
	// checker could not distinguish from the original; under the
	// completeness grammar these are expected (UNSAT kill constraints).
	SuspectedEquivalent []string
	// NonEquivalent holds survivors a witness dataset distinguishes:
	// each entry is a reproducer (mutant SQL + witness inserts).
	NonEquivalent []string
}

// CheckCompleteness runs the paper's end-to-end guarantee for one case:
// core.Generate builds the kill suite, mutation.Evaluate computes the
// kill matrix, and every survivor is cross-examined by the random
// equivalence checker (seeded with equivSeed for determinism). Surviving
// non-equivalent mutants are completeness violations; their witnesses
// are double-checked against refeval so an engine bug cannot
// masquerade as a solver bug.
func CheckCompleteness(c *Case, equivSeed int64) (*CompletenessResult, error) {
	opts := core.DefaultOptions()
	opts.SolverNodeLimit = 2_000_000
	opts.SolverTimeout = 10 * time.Second
	opts.GoalTimeout = GoalTimeout
	suite, err := core.NewGenerator(c.Query, opts).Generate()
	if err != nil {
		if errors.Is(err, solver.ErrLimit) {
			return &CompletenessResult{BudgetExceeded: true}, nil
		}
		if errors.Is(err, core.ErrPartialSuite) && suite != nil {
			// Goal budgets exhausted: a deliberate skip, exactly like the
			// per-solve ErrLimit path — unless a goal actually panicked,
			// which is a real bug the soak must surface.
			for _, f := range suite.Incomplete {
				if f.Reason == core.ReasonPanic {
					return nil, fmt.Errorf("randql: seed %d: generate: goal panicked: %w\n%s", c.Seed, f.Err, c.Repro(nil))
				}
			}
			return &CompletenessResult{BudgetExceeded: true}, nil
		}
		return nil, fmt.Errorf("randql: seed %d: generate: %w\n%s", c.Seed, err, c.Repro(nil))
	}
	datasets := suite.All()
	for _, ds := range datasets {
		if err := c.Schema.CheckDataset(ds); err != nil {
			return nil, fmt.Errorf("randql: seed %d: suite dataset %q violates schema: %w\n%s",
				c.Seed, ds.Purpose, err, c.Repro(ds))
		}
	}
	mutants, err := mutation.Space(c.Query, mutation.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("randql: seed %d: mutant space: %w\n%s", c.Seed, err, c.Repro(nil))
	}
	report, err := mutation.Evaluate(c.Query, mutants, datasets)
	if err != nil {
		return nil, fmt.Errorf("randql: seed %d: evaluate: %w\n%s", c.Seed, err, c.Repro(nil))
	}

	res := &CompletenessResult{
		Mutants:  len(mutants),
		Skipped:  len(suite.Skipped),
		Datasets: len(datasets),
	}
	survivors := report.Survivors()
	res.Killed = len(mutants) - len(survivors)

	chk := mutation.NewEquivalenceChecker(equivSeed)
	for _, mi := range survivors {
		m := mutants[mi]
		equiv, witness, err := chk.Check(c.Query, m)
		if err != nil {
			return nil, fmt.Errorf("randql: seed %d: equivalence check of %s: %w\n%s", c.Seed, m.Key, err, c.Repro(nil))
		}
		if equiv {
			res.SuspectedEquivalent = append(res.SuspectedEquivalent, fmt.Sprintf("%s (%s): %s", m.Key, m.Kind, m.Desc))
			continue
		}
		// Confirm with the independent evaluator that the witness really
		// distinguishes mutant from original before reporting a
		// completeness violation.
		confirmed, detail := confirmWitness(c, m, witness)
		entry := fmt.Sprintf("mutant %s (%s): %s\nmutant SQL: %s\n%s\nwitness:\n%s",
			m.Key, m.Kind, m.Desc, mutantSQL(c.Query, m), detail, witnessRepro(c, witness))
		if confirmed {
			res.NonEquivalent = append(res.NonEquivalent, entry)
		} else {
			// The engine claims a divergence refeval does not see: that is
			// an engine bug, which the differential oracle owns — but it
			// still fails the completeness run loudly.
			res.NonEquivalent = append(res.NonEquivalent, "UNCONFIRMED BY REFEVAL (engine/refeval disagree): "+entry)
		}
	}
	sort.Strings(res.SuspectedEquivalent)
	return res, nil
}

// confirmWitness re-evaluates original and mutant on the witness with
// refeval and reports whether the divergence is real.
func confirmWitness(c *Case, m *mutation.Mutant, witness *schema.Dataset) (bool, string) {
	if witness == nil {
		return false, "no witness dataset returned"
	}
	orig, err1 := refeval.Eval(c.Query, witness)
	mut, err2 := refeval.EvalPlan(c.Query, m.Plan.Tree, m.Plan.Preds, m.Plan.Subs, m.Plan.Aggs, m.Plan.Having, witness)
	if err1 != nil || err2 != nil {
		return false, fmt.Sprintf("refeval errors: original=%v mutant=%v", err1, err2)
	}
	if multisetEqual(orig.Multiset(), mut.Multiset()) {
		return false, "refeval sees identical results on the witness"
	}
	return true, fmt.Sprintf("refeval confirms: original %d rows, mutant %d rows differ as multisets",
		len(orig.Rows), len(mut.Rows))
}

// mutantSQL renders a mutant plan back to SQL via the qtree printer so
// failure reports are runnable.
func mutantSQL(q *qtree.Query, m *mutation.Mutant) (s string) {
	defer func() { // printer is best-effort on exotic mutants
		if r := recover(); r != nil {
			s = fmt.Sprintf("(unrenderable: %v)", r)
		}
	}()
	return qtree.RenderSQLFull(q, m.Plan.Tree, m.Plan.Preds, m.Plan.Subs, m.Plan.Aggs, m.Plan.Having)
}

func witnessRepro(c *Case, witness *schema.Dataset) string {
	if witness == nil {
		return "(none)"
	}
	return strings.TrimSuffix(witness.SQLInserts(c.Schema), "\n")
}
