package randql

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/qtree"
)

// Shared flags: the tests, the nightly soak job and local reproduction
// all use the same entry points. A failing CI run prints a seed; re-run
// with -randql.seed=<seed> -randql.n=1 (or -randql.q=1) to replay just
// that case.
var (
	flagSeed = flag.Int64("randql.seed", 1, "base seed for randql cases")
	flagN    = flag.Int("randql.n", 70, "number of differential-oracle cases (3 datasets each)")
	flagQ    = flag.Int("randql.q", 70, "number of suite-completeness cases")
	// flagGoalTimeout bounds each kill goal of a completeness case, so one
	// pathological solver instance bounds that case (counted as
	// budget-skipped) instead of stalling the whole soak. The nightly job
	// sets it explicitly; 0 keeps goals unbounded for local runs.
	flagGoalTimeout = flag.Duration("randql.goal-timeout", 0, "per-kill-goal wall-clock budget for completeness cases (0 = unlimited)")
	// Extended-class weight knobs. Negative keeps the preset's value;
	// 0 disables the class (and drops it from the coverage requirement).
	flagSubq   = flag.Float64("randql.subq", -1, "WHERE-subquery probability override (-1 = preset)")
	flagHaving = flag.Float64("randql.having", -1, "HAVING probability override (-1 = preset)")
	flagLike   = flag.Float64("randql.like", -1, "LIKE probability override (-1 = preset)")
)

// applyFlags overlays the extended-class weight flags onto a preset.
func applyFlags(cfg Config) Config {
	if *flagSubq >= 0 {
		cfg.SubqProb = *flagSubq
	}
	if *flagHaving >= 0 {
		cfg.HavingProb = *flagHaving
	}
	if *flagLike >= 0 {
		cfg.LikeProb = *flagLike
	}
	return cfg
}

// checkCoverage fails the soak when an enabled grammar rule was never
// exercised — but only for runs big enough that absence means starvation
// rather than bad luck on a handful of seeds (the rarest rules appear in
// roughly 7% of completeness cases, so enforcement starts at 60 cases;
// single-seed reproductions and short CI smokes only log the counts).
func checkCoverage(t *testing.T, cov *Coverage, cfg Config, cases int) {
	t.Helper()
	t.Logf("grammar coverage over %d cases: %s", cases, cov.String())
	if cases < 60 {
		return
	}
	if missing := cov.Missing(cfg); len(missing) > 0 {
		t.Errorf("enabled grammar rules never exercised in %d cases: %v (observed: %s)", cases, missing, cov)
	}
}

// saveFailure writes a reproducer into $RANDQL_FAILURE_DIR (if set) so
// CI can upload it as an artifact.
func saveFailure(t *testing.T, seed int64, repro string) {
	dir := os.Getenv("RANDQL_FAILURE_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("randql: cannot create failure dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("seed-%d.sql", seed))
	if err := os.WriteFile(path, []byte(repro), 0o644); err != nil {
		t.Logf("randql: cannot write failure artifact: %v", err)
		return
	}
	t.Logf("randql: failure reproducer written to %s", path)
}

// TestDifferentialOracle cross-checks the execution engine against the
// independent reference evaluator on randomized (query, dataset) pairs
// drawn from the full grammar (outer and natural joins, NULL-prone
// data, floats, booleans, DISTINCT, aggregates, constant conjuncts).
// Any multiset divergence fails with a runnable reproducer.
func TestDifferentialOracle(t *testing.T) {
	cfg := applyFlags(DefaultConfig())
	const datasetsPerCase = 3
	pairs := 0
	cov := NewCoverage()
	for i := 0; i < *flagN; i++ {
		seed := *flagSeed + int64(i)
		c, err := NewCase(seed, cfg)
		if err != nil {
			t.Fatalf("NewCase(%d): %v", seed, err)
		}
		cov.Observe(c.Query, c.SQL)
		for d := 0; d < datasetsPerCase; d++ {
			ds, err := c.NextDataset()
			if err != nil {
				t.Fatalf("seed %d dataset %d: %v", seed, d, err)
			}
			if err := DiffOne(c, ds); err != nil {
				saveFailure(t, seed, c.Repro(ds))
				t.Fatalf("differential oracle divergence: %v", err)
			}
			pairs++
		}
	}
	t.Logf("differential oracle: %d (query, dataset) pairs, zero divergences", pairs)
	if pairs < 200 {
		t.Errorf("only %d pairs exercised, want >= 200 (raise -randql.n)", pairs)
	}
	checkCoverage(t, cov, cfg, *flagN)
}

// TestSuiteCompleteness asserts the paper's guarantee end-to-end on
// random queries from the completeness grammar (§IV–V assumptions:
// int/string NOT NULL data columns, no DISTINCT, no constant
// conjuncts): every mutant the generated suite leaves alive must be
// equivalent to the original query. Survivors are cross-examined by the
// randomized equivalence checker; a confirmed non-equivalent survivor
// is a bug and fails with mutant SQL plus the witness dataset.
func TestSuiteCompleteness(t *testing.T) {
	if testing.Short() {
		t.Skip("completeness property is slow; skipped with -short")
	}
	cfg := applyFlags(CompletenessConfig())
	prev := GoalTimeout
	GoalTimeout = *flagGoalTimeout
	defer func() { GoalTimeout = prev }()
	totalMutants, totalKilled, totalSuspected, budgetExceeded := 0, 0, 0, 0
	cov := NewCoverage()
	for i := 0; i < *flagQ; i++ {
		seed := *flagSeed + 10000 + int64(i)
		c, err := NewCase(seed, cfg)
		if err != nil {
			t.Fatalf("NewCase(%d): %v", seed, err)
		}
		cov.Observe(c.Query, c.SQL)
		res, err := CheckCompleteness(c, seed*31+7)
		if err != nil {
			saveFailure(t, seed, c.Repro(nil))
			t.Fatalf("completeness check failed: %v", err)
		}
		if res.BudgetExceeded {
			budgetExceeded++
			t.Logf("seed %d: solver budget exceeded, case skipped: %s", seed, c.SQL)
			continue
		}
		if len(res.NonEquivalent) > 0 {
			saveFailure(t, seed, c.Repro(nil))
			t.Fatalf("seed %d: %d non-equivalent mutants survived the generated suite:\n%s\nquery: %s\n%s",
				seed, len(res.NonEquivalent), res.NonEquivalent[0], c.SQL, c.Repro(nil))
		}
		totalMutants += res.Mutants
		totalKilled += res.Killed
		totalSuspected += len(res.SuspectedEquivalent)
	}
	t.Logf("completeness: %d queries (%d skipped on solver budget), %d mutants, %d killed, %d suspected-equivalent survivors, 0 non-equivalent survivors",
		*flagQ, budgetExceeded, totalMutants, totalKilled, totalSuspected)
	if budgetExceeded*5 > *flagQ {
		t.Errorf("%d of %d cases exceeded the solver budget — pathological instances should be rare", budgetExceeded, *flagQ)
	}
	checkCoverage(t, cov, cfg, *flagQ)
}

// TestCaseDeterminism pins the determinism contract: the same seed
// reproduces the identical schema, SQL and datasets byte for byte.
func TestCaseDeterminism(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), CompletenessConfig()} {
		a, err := NewCase(42, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewCase(42, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Schema.String() != b.Schema.String() {
			t.Fatalf("schema not deterministic:\n%s\nvs\n%s", a.Schema, b.Schema)
		}
		if a.SQL != b.SQL {
			t.Fatalf("query not deterministic:\n%s\nvs\n%s", a.SQL, b.SQL)
		}
		for i := 0; i < 3; i++ {
			da, err := a.NextDataset()
			if err != nil {
				t.Fatal(err)
			}
			db, err := b.NextDataset()
			if err != nil {
				t.Fatal(err)
			}
			if da.SQLInserts(a.Schema) != db.SQLInserts(b.Schema) {
				t.Fatalf("dataset %d not deterministic", i)
			}
		}
	}
}

// TestSQLPrinterRoundTripRandom extends the hand-written printer tests
// with random queries: printing a random query and re-building it must
// yield a query the engine evaluates identically on a random dataset.
func TestSQLPrinterRoundTripRandom(t *testing.T) {
	cfg := DefaultConfig()
	for i := 0; i < 40; i++ {
		seed := *flagSeed + 20000 + int64(i)
		c, err := NewCase(seed, cfg)
		if err != nil {
			t.Fatalf("NewCase(%d): %v", seed, err)
		}
		printed := c.Query.SQLString()
		q2, err := qtree.BuildSQL(c.Schema, printed)
		if err != nil {
			t.Fatalf("seed %d: printed SQL does not rebuild: %v\noriginal: %s\nprinted:  %s", seed, err, c.SQL, printed)
		}
		ds, err := c.NextDataset()
		if err != nil {
			t.Fatal(err)
		}
		r1, err := engine.NewPlan(c.Query).Run(ds)
		if err != nil {
			t.Fatalf("seed %d: run original: %v", seed, err)
		}
		r2, err := engine.NewPlan(q2).Run(ds)
		if err != nil {
			t.Fatalf("seed %d: run reprinted: %v\nprinted: %s", seed, err, printed)
		}
		if !multisetEqual(r1.Multiset(), r2.Multiset()) {
			saveFailure(t, seed, c.Repro(ds))
			t.Fatalf("seed %d: printed query evaluates differently\noriginal: %s\nprinted:  %s\n%s", seed, c.SQL, printed, c.Repro(ds))
		}
	}
}
