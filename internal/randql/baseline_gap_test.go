package randql

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mutation"
	"repro/internal/refeval"
)

// TestBaselineMissesMutantsFullPipelineKills reproduces the full paper's
// §VI-C.1 comparison against the short-paper algorithm [14]: on random
// FK-free queries, the baseline suite (input database + one dataset per
// emptied relation) misses whole classes of mutants that the
// constraint-based suite kills — in particular comparison mutants, which
// require boundary values the input database only contains by luck, and
// which emptying a relation can never expose. Every gap the test counts
// is double-checked against the independent reference evaluator: the
// full-pipeline kill must be a real multiset divergence, not an engine
// artifact.
func TestBaselineMissesMutantsFullPipelineKills(t *testing.T) {
	cfg := CompletenessConfig()
	cfg.FKProb = 0 // [14] does not handle foreign keys (§IV-B)
	cfg.CompositeProb = 0

	opts := core.DefaultOptions()
	opts.SolverNodeLimit = 2_000_000

	missedKinds := map[mutation.Kind]int{}
	cases := 0
	for i := int64(0); i < 40 && cases < 8; i++ {
		seed := 77000 + i
		c, err := NewCase(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: NewCase: %v", seed, err)
		}
		mutants, err := mutation.Space(c.Query, mutation.DefaultOptions())
		if err != nil || len(mutants) == 0 {
			continue // e.g. no mutation points; try the next seed
		}
		input, err := c.NextDataset()
		if err != nil {
			t.Fatalf("seed %d: input dataset: %v", seed, err)
		}
		if len(input.TableNames()) == 0 {
			continue
		}

		baseDS, err := baseline.Generate(c.Query, input)
		if err != nil {
			t.Fatalf("seed %d: baseline.Generate: %v", seed, err)
		}
		baseRep, err := mutation.Evaluate(c.Query, mutants, baseDS)
		if err != nil {
			t.Fatalf("seed %d: evaluating baseline suite: %v", seed, err)
		}

		suite, err := core.NewGenerator(c.Query, opts).Generate()
		if err != nil {
			continue // solver budget; the gap count does not depend on any one seed
		}
		coreRep, err := mutation.Evaluate(c.Query, mutants, suite.All())
		if err != nil {
			t.Fatalf("seed %d: evaluating full-pipeline suite: %v", seed, err)
		}
		cases++

		for mi, m := range mutants {
			if baseRep.MutantKilled(mi) || !coreRep.MutantKilled(mi) {
				continue
			}
			// Found a gap: the constraint-based suite kills m, the
			// baseline suite does not. Confirm the kill with refeval on
			// the first killing dataset.
			confirmed := false
			for di, killed := range coreRep.Killed[mi] {
				if !killed {
					continue
				}
				ds := coreRep.Datasets[di]
				orig, err1 := refeval.Eval(c.Query, ds)
				mut, err2 := refeval.EvalPlan(c.Query, m.Plan.Tree, m.Plan.Preds, m.Plan.Subs, m.Plan.Aggs, m.Plan.Having, ds)
				if err1 != nil || err2 != nil {
					t.Fatalf("seed %d: refeval on killing dataset: original=%v mutant=%v", seed, err1, err2)
				}
				if multisetEqual(orig.Multiset(), mut.Multiset()) {
					t.Fatalf("seed %d: engine kill of mutant %s (%s) not confirmed by refeval\n%s",
						seed, m.Key, m.Desc, c.Repro(ds))
				}
				confirmed = true
				break
			}
			if confirmed {
				missedKinds[m.Kind]++
			}
		}
	}
	if cases < 8 {
		t.Fatalf("only %d/8 seeds produced evaluable cases; widen the seed window", cases)
	}
	if len(missedKinds) == 0 {
		t.Fatalf("baseline suite killed everything the full pipeline killed across %d cases; "+
			"expected it to miss at least one mutant class (§VI-C.1)", cases)
	}
	t.Logf("mutant kills missed by the [14] baseline but confirmed (refeval) for the full pipeline, by kind: %v", missedKinds)
}
