package randql

import (
	"reflect"
	"testing"

	"repro/internal/qtree"
	"repro/internal/schema"
	"repro/internal/sqlparser"
)

// covSchema is a tiny fixed schema for hand-written coverage probes.
func covSchema(t *testing.T) *schema.Schema {
	t.Helper()
	sch, err := sqlparser.ParseSchema(`
CREATE TABLE r (a INT PRIMARY KEY, s VARCHAR(10) NOT NULL);
CREATE TABLE q (b INT PRIMARY KEY, u VARCHAR(10) NOT NULL);
`)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func covObserve(t *testing.T, sch *schema.Schema, sql string) *Coverage {
	t.Helper()
	q, err := qtree.BuildSQL(sch, sql)
	if err != nil {
		t.Fatalf("BuildSQL(%q): %v", sql, err)
	}
	cov := NewCoverage()
	cov.Observe(q, sql)
	return cov
}

// TestCoverageObserve pins the rule detection: retained connectives come
// from the normalized tree, decorrelated positive forms from the SQL
// text, HAVING and [NOT] LIKE from the tree.
func TestCoverageObserve(t *testing.T) {
	sch := covSchema(t)
	cases := []struct {
		sql  string
		want []string
	}{
		{"SELECT * FROM r WHERE r.a NOT IN (SELECT q.b FROM q AS q)", []string{RuleSubNotIn}},
		{"SELECT * FROM r WHERE r.a IN (SELECT q.b FROM q AS q)", []string{RuleSubIn}},
		{"SELECT * FROM r WHERE NOT EXISTS (SELECT * FROM q AS q WHERE q.b = r.a)", []string{RuleSubNotExists}},
		{"SELECT * FROM r WHERE EXISTS (SELECT * FROM q AS q WHERE q.b = r.a)", []string{RuleSubExists}},
		{"SELECT r.a, COUNT(*) FROM r GROUP BY r.a HAVING COUNT(*) > 1", []string{RuleHaving}},
		{"SELECT * FROM r WHERE r.s LIKE 'u%'", []string{RuleLike}},
		{"SELECT * FROM r WHERE r.s NOT LIKE '%v'", []string{RuleNotLike}},
	}
	for _, tc := range cases {
		cov := covObserve(t, sch, tc.sql)
		for _, rule := range tc.want {
			if cov.counts[rule] == 0 {
				t.Errorf("%q: rule %s not observed (got: %s)", tc.sql, rule, cov)
			}
		}
	}
}

// TestCoverageMissing checks that Missing demands exactly the rules the
// config enables and is satisfied once each has been seen.
func TestCoverageMissing(t *testing.T) {
	cfg := Config{SubqProb: 0.3, HavingProb: 0.3, LikeProb: 0.3, AllowAgg: true, AggProb: 0.3}
	cov := NewCoverage()
	want := []string{
		RuleHaving, RuleLike, RuleNotLike,
		RuleSubExists, RuleSubIn, RuleSubNotExists, RuleSubNotIn,
	}
	if got := cov.Missing(cfg); !reflect.DeepEqual(got, want) {
		t.Fatalf("empty coverage Missing = %v, want %v", got, want)
	}

	sch := covSchema(t)
	for _, sql := range []string{
		"SELECT * FROM r WHERE r.a NOT IN (SELECT q.b FROM q AS q)",
		"SELECT * FROM r WHERE r.a IN (SELECT q.b FROM q AS q)",
		"SELECT * FROM r WHERE NOT EXISTS (SELECT * FROM q AS q WHERE q.b = r.a)",
		"SELECT * FROM r WHERE EXISTS (SELECT * FROM q AS q WHERE q.b = r.a)",
		"SELECT r.a, COUNT(*) FROM r GROUP BY r.a HAVING COUNT(*) > 1",
		"SELECT * FROM r WHERE r.s LIKE 'u%'",
		"SELECT * FROM r WHERE r.s NOT LIKE '%v'",
	} {
		q, err := qtree.BuildSQL(sch, sql)
		if err != nil {
			t.Fatalf("BuildSQL(%q): %v", sql, err)
		}
		cov.Observe(q, sql)
	}
	if got := cov.Missing(cfg); len(got) != 0 {
		t.Fatalf("full coverage Missing = %v, want none (observed: %s)", got, cov)
	}

	// Disabled knobs demand nothing.
	if got := cov.Missing(Config{}); len(got) != 0 {
		t.Fatalf("zero config Missing = %v, want none", got)
	}
}
