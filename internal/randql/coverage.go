package randql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/qtree"
)

// Coverage counts which grammar rules of the extended query class a soak
// actually exercised. The random grammar is probabilistic, so a knob can
// be enabled yet silently starved — by a bad interaction of
// probabilities, by the builder rejecting every instance of a rule, or
// by a regression that stops emitting a form altogether. The soaks
// (tests and cmd/randql) feed every accepted case through Observe and
// fail when a rule that its Config enables was never seen, turning
// "the soak passed" into "the soak passed AND it tested what we think
// it tests".
type Coverage struct {
	counts map[string]int
}

// Grammar-rule names tracked by Coverage. Kept as constants so the
// tests, the CLI and Missing agree on spelling.
const (
	RuleSubIn        = "sub_in"
	RuleSubNotIn     = "sub_not_in"
	RuleSubExists    = "sub_exists"
	RuleSubNotExists = "sub_not_exists"
	RuleHaving       = "having"
	RuleLike         = "like"
	RuleNotLike      = "not_like"
)

// NewCoverage returns an empty counter.
func NewCoverage() *Coverage {
	return &Coverage{counts: map[string]int{}}
}

// Observe records the grammar rules present in one accepted case. The
// normalized tree is authoritative for the retained forms (NOT IN /
// NOT EXISTS connectives, HAVING, LIKE); the positive IN / EXISTS
// connectives decorrelate into joins during normalization (§V-H), so
// they are only visible in the original SQL text and are counted there.
func (c *Coverage) Observe(q *qtree.Query, sql string) {
	for _, s := range q.Subs {
		switch s.Kind {
		case qtree.SubNotIn:
			c.counts[RuleSubNotIn]++
		case qtree.SubNotExists:
			c.counts[RuleSubNotExists]++
		}
	}
	up := strings.ToUpper(sql)
	if n := strings.Count(up, " IN (SELECT") - strings.Count(up, " NOT IN (SELECT"); n > 0 {
		c.counts[RuleSubIn] += n
	}
	if n := strings.Count(up, "EXISTS (SELECT") - strings.Count(up, "NOT EXISTS (SELECT"); n > 0 {
		c.counts[RuleSubExists] += n
	}
	if q.Agg != nil && len(q.Agg.Having) > 0 {
		c.counts[RuleHaving]++
	}
	preds := q.Preds
	for _, s := range q.Subs {
		preds = append(preds[:len(preds):len(preds)], s.Preds...)
	}
	for _, p := range preds {
		if p.Like == nil {
			continue
		}
		if p.Like.Not {
			c.counts[RuleNotLike]++
		} else {
			c.counts[RuleLike]++
		}
	}
}

// Missing returns the rules cfg enables that were never observed,
// sorted. An empty result means the soak exercised every enabled rule
// at least once.
func (c *Coverage) Missing(cfg Config) []string {
	var want []string
	if cfg.SubqProb > 0 {
		want = append(want, RuleSubIn, RuleSubNotIn, RuleSubExists, RuleSubNotExists)
	}
	if cfg.HavingProb > 0 && cfg.AllowAgg && cfg.AggProb > 0 {
		want = append(want, RuleHaving)
	}
	if cfg.LikeProb > 0 {
		want = append(want, RuleLike, RuleNotLike)
	}
	var missing []string
	for _, r := range want {
		if c.counts[r] == 0 {
			missing = append(missing, r)
		}
	}
	sort.Strings(missing)
	return missing
}

// String renders the observed counts, sorted by rule name.
func (c *Coverage) String() string {
	rules := make([]string, 0, len(c.counts))
	for r := range c.counts {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = fmt.Sprintf("%s=%d", r, c.counts[r])
	}
	return strings.Join(parts, " ")
}
