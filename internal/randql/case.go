package randql

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/qtree"
	"repro/internal/schema"
)

// Case is one random (schema, query, datasets) triple, fully determined
// by (Seed, Cfg): a single math/rand stream seeded with Seed generates
// the schema, then the query, then each dataset in NextDataset order.
// Two Cases with equal seed and config are byte-for-byte identical,
// including every dataset, no matter which harness created them.
type Case struct {
	Seed   int64
	Cfg    Config
	Schema *schema.Schema
	SQL    string
	Query  *qtree.Query

	rng       *rand.Rand
	nDatasets int
}

// NewCase derives the schema and query for seed. Errors are internal
// generator bugs (the query grammar retries until the builder accepts),
// never bad luck.
func NewCase(seed int64, cfg Config) (*Case, error) {
	rng := rand.New(rand.NewSource(seed))
	sch, err := randomSchema(rng, cfg)
	if err != nil {
		return nil, err
	}
	sql, q, err := randomQuery(rng, cfg, sch)
	if err != nil {
		return nil, err
	}
	return &Case{Seed: seed, Cfg: cfg, Schema: sch, SQL: sql, Query: q, rng: rng}, nil
}

// NextDataset draws the next random dataset from the case's stream. The
// i-th call returns the same dataset for every run with this seed.
func (c *Case) NextDataset() (*schema.Dataset, error) {
	c.nDatasets++
	return randomDataset(c.rng, c.Cfg, c.Schema, fmt.Sprintf("seed %d dataset %d", c.Seed, c.nDatasets))
}

// Repro renders a self-contained reproducer for a failure on this case:
// runnable DDL, the query SQL, the offending dataset as INSERT
// statements, and the one-command re-run line. Every harness failure
// message embeds this so a CI artifact alone is enough to replay the
// case locally.
func (c *Case) Repro(ds *schema.Dataset) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- randql reproducer: seed %d\n", c.Seed)
	fmt.Fprintf(&sb, "-- rerun: go test ./internal/randql -run 'TestDifferentialOracle|TestSuiteCompleteness' -randql.seed=%d -randql.n=1 -randql.q=1\n", c.Seed)
	sb.WriteString(c.Schema.String())
	if !strings.HasSuffix(sb.String(), "\n") {
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "-- query\n%s;\n", c.SQL)
	if ds != nil {
		fmt.Fprintf(&sb, "-- dataset (%s)\n%s", ds.Purpose, ds.SQLInserts(c.Schema))
	}
	return sb.String()
}
