package randql

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/qtree"
	"repro/internal/schema"
	"repro/internal/sqltypes"
)

// Predicate constant pools. The dataset generator draws values from the
// same neighbourhoods (intPool / strPool in dataset.go) so random data
// actually straddles the predicate boundaries instead of trivially
// satisfying or falsifying every conjunct.
var (
	predInts    = []int{-2, -1, 0, 1, 2, 3, 4, 5, 6}
	predStrings = []string{"u", "v", "w", "x"}
	cmpOps      = []string{"=", "<>", "<", "<=", ">", ">="}
)

// occ is one FROM-clause occurrence of a relation under an alias.
type occ struct {
	alias string
	rel   *schema.Relation
}

// randomQuery generates a random single-block SELECT over sch as SQL
// text, building it through qtree.BuildSQL so every structural
// restriction the builder enforces (outer-join connectivity, FULL OUTER
// visibility A7/A8, natural-join ambiguity) is applied by construction:
// candidates the builder rejects are simply re-rolled. The retry loop is
// bounded; the final fallback "SELECT * FROM t0" is always legal because
// randomSchema always emits t0.
func randomQuery(rng *rand.Rand, cfg Config, sch *schema.Schema) (string, *qtree.Query, error) {
	for attempt := 0; attempt < 400; attempt++ {
		sql, ok := trySQL(rng, cfg, sch)
		if !ok {
			continue
		}
		q, err := qtree.BuildSQL(sch, sql)
		if err != nil {
			continue
		}
		if cfg.RequireConnected && !joinConnected(q) {
			continue
		}
		return sql, q, nil
	}
	sql := "SELECT * FROM t0"
	q, err := qtree.BuildSQL(sch, sql)
	if err != nil {
		return "", nil, fmt.Errorf("randql: fallback query rejected: %w", err)
	}
	return sql, q, nil
}

// trySQL assembles one candidate query. It may bail out (ok=false) when
// a random choice paints it into a corner (e.g. no legal join condition).
func trySQL(rng *rand.Rand, cfg Config, sch *schema.Schema) (string, bool) {
	rels := orderedRelations(sch)
	if len(rels) == 0 {
		return "", false
	}

	// Pick occurrences (with replacement) and assign aliases: the bare
	// relation name when it appears once, rel_N suffixes otherwise.
	k := 1
	if cfg.MaxOccs > 1 {
		k = 1 + rng.Intn(cfg.MaxOccs)
	}
	chosen := make([]*schema.Relation, k)
	count := map[string]int{}
	for i := range chosen {
		chosen[i] = pick(rng, rels)
		count[chosen[i].Name]++
	}
	seen := map[string]int{}
	occs := make([]occ, k)
	for i, r := range chosen {
		alias := r.Name
		if count[r.Name] > 1 {
			seen[r.Name]++
			alias = fmt.Sprintf("%s_%d", r.Name, seen[r.Name])
		}
		occs[i] = occ{alias: alias, rel: r}
	}

	var from string
	var whereConds []string
	if k == 1 || chance(rng, 0.4) {
		// Comma style: cross product in FROM, join conditions in WHERE.
		parts := make([]string, k)
		for i, o := range occs {
			parts[i] = fromItem(o)
		}
		from = strings.Join(parts, ", ")
		for i := 1; i < k; i++ {
			if chance(rng, 0.8) {
				if cond, ok := joinCond(rng, occs[:i], occs[i], false); ok {
					whereConds = append(whereConds, cond...)
				}
			}
		}
	} else {
		// Left-deep join chain with explicit join types.
		from = fromItem(occs[0])
		for i := 1; i < k; i++ {
			jt := joinType(rng, cfg)
			natural := cfg.AllowNatural && chance(rng, 0.3) && naturalOK(occs[:i], occs[i])
			if natural {
				from = fmt.Sprintf("%s NATURAL %s %s", from, jt, fromItem(occs[i]))
				continue
			}
			outer := jt != "JOIN"
			cond, ok := joinCond(rng, occs[:i], occs[i], outer)
			if !ok {
				if outer {
					return "", false // outer joins require an ON condition
				}
				from = fmt.Sprintf("%s CROSS JOIN %s", from, fromItem(occs[i]))
				continue
			}
			from = fmt.Sprintf("%s %s %s ON %s", from, jt, fromItem(occs[i]), strings.Join(cond, " AND "))
		}
	}

	// Selections.
	if cfg.MaxSelections > 0 {
		for i, n := 0, rng.Intn(cfg.MaxSelections+1); i < n; i++ {
			if s, ok := selection(rng, occs); ok {
				if like, lok := likeSelection(rng, cfg, occs); lok && chance(rng, cfg.LikeProb) {
					s = like
				}
				whereConds = append(whereConds, s)
			}
		}
	}
	if cfg.SubqProb > 0 && chance(rng, cfg.SubqProb) {
		if s, ok := subqueryCond(rng, cfg, sch, occs); ok {
			whereConds = append(whereConds, s)
		}
	}
	if cfg.AllowConstPred && chance(rng, 0.1) {
		whereConds = append(whereConds, pick(rng, []string{"1 = 2", "1 = 1", "3 > 2", "2 < 1"}))
	}

	sel := selectClause(rng, cfg, occs)

	var sb strings.Builder
	sb.WriteString(sel.list)
	sb.WriteString(" FROM ")
	sb.WriteString(from)
	if len(whereConds) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(whereConds, " AND "))
	}
	if sel.groupBy != "" {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(sel.groupBy)
	}
	if sel.having != "" {
		sb.WriteString(" HAVING ")
		sb.WriteString(sel.having)
	}
	return sb.String(), true
}

// orderedRelations returns t0, t1, … in index order (not lexicographic,
// which would misplace t10). Relations not matching the tN convention
// are appended in name order.
func orderedRelations(sch *schema.Schema) []*schema.Relation {
	var out []*schema.Relation
	for i := 0; ; i++ {
		r := sch.Relation(fmt.Sprintf("t%d", i))
		if r == nil {
			break
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		out = sch.Relations()
	}
	return out
}

func fromItem(o occ) string {
	if o.alias == o.rel.Name {
		return o.rel.Name
	}
	return fmt.Sprintf("%s AS %s", o.rel.Name, o.alias)
}

func joinType(rng *rand.Rand, cfg Config) string {
	if cfg.AllowOuter && chance(rng, 0.45) {
		return pick(rng, []string{"LEFT OUTER JOIN", "RIGHT OUTER JOIN", "FULL OUTER JOIN"})
	}
	return "JOIN"
}

// naturalOK reports whether a NATURAL join of the accumulated left side
// with right is unambiguous: at least one shared attribute name, and no
// shared name exposed more than once on the left.
func naturalOK(left []occ, right occ) bool {
	leftCount := map[string]int{}
	for _, o := range left {
		for _, a := range o.rel.Attrs {
			leftCount[a.Name]++
		}
	}
	common := 0
	for _, a := range right.rel.Attrs {
		switch leftCount[a.Name] {
		case 0:
		case 1:
			common++
		default:
			return false // ambiguous on the left side
		}
	}
	return common > 0
}

// joinCond builds the ON (or WHERE, comma-style) conjuncts connecting
// right to one of the left occurrences. FK column pairs are preferred
// (composite FKs emit one equality per column pair, keeping referential
// joins aligned with the schema); otherwise a random same-kind column
// pair is equated. Inner joins occasionally get a non-equi or arithmetic
// condition instead; outer joins always get plain equalities so the
// builder's connectivity requirement is met.
func joinCond(rng *rand.Rand, left []occ, right occ, outer bool) ([]string, bool) {
	type fkPair struct {
		l, r         occ
		lcols, rcols []string
	}
	var fks []fkPair
	for _, lo := range left {
		for _, fk := range right.rel.ForeignKeys {
			if fk.RefTable == lo.rel.Name {
				fks = append(fks, fkPair{l: lo, r: right, lcols: fk.RefColumns, rcols: fk.Columns})
			}
		}
		for _, fk := range lo.rel.ForeignKeys {
			if fk.RefTable == right.rel.Name {
				fks = append(fks, fkPair{l: lo, r: right, lcols: fk.Columns, rcols: fk.RefColumns})
			}
		}
	}
	if len(fks) > 0 && chance(rng, 0.7) {
		p := pick(rng, fks)
		conds := make([]string, len(p.lcols))
		for i := range p.lcols {
			conds[i] = fmt.Sprintf("%s.%s = %s.%s", p.l.alias, p.lcols[i], p.r.alias, p.rcols[i])
		}
		return conds, true
	}

	// Random same-kind column pair.
	lo := pick(rng, left)
	type pair struct {
		lc, rc string
		kind   sqltypes.Kind
	}
	var pairs []pair
	for _, la := range lo.rel.Attrs {
		for _, ra := range right.rel.Attrs {
			if la.Type == ra.Type && la.Type != sqltypes.KindBool {
				pairs = append(pairs, pair{lc: la.Name, rc: ra.Name, kind: la.Type})
			}
		}
	}
	if len(pairs) == 0 {
		return nil, false
	}
	p := pick(rng, pairs)
	if !outer && p.kind == sqltypes.KindInt {
		if chance(rng, 0.12) {
			op := pick(rng, []string{"<", "<=", ">", ">=", "<>"})
			return []string{fmt.Sprintf("%s.%s %s %s.%s", lo.alias, p.lc, op, right.alias, p.rc)}, true
		}
		if chance(rng, 0.1) {
			return []string{fmt.Sprintf("%s.%s + %d = %s.%s", lo.alias, p.lc, 1+rng.Intn(2), right.alias, p.rc)}, true
		}
	}
	return []string{fmt.Sprintf("%s.%s = %s.%s", lo.alias, p.lc, right.alias, p.rc)}, true
}

// selection builds one WHERE conjunct local to a single occurrence:
// column OP constant on int/float/string columns, or occasionally a
// same-occurrence column comparison. Boolean columns are skipped (the
// comparison grammar is A4's int/string class plus floats for the
// differential oracle).
func selection(rng *rand.Rand, occs []occ) (string, bool) {
	o := pick(rng, occs)
	var cols []schema.Attribute
	for _, a := range o.rel.Attrs {
		if a.Type != sqltypes.KindBool {
			cols = append(cols, a)
		}
	}
	if len(cols) == 0 {
		return "", false
	}
	c := cols[rng.Intn(len(cols))]
	// Same-occurrence column-column comparison.
	if chance(rng, 0.2) {
		var mates []schema.Attribute
		for _, a := range cols {
			if a.Name != c.Name && a.Type == c.Type {
				mates = append(mates, a)
			}
		}
		if len(mates) > 0 {
			m := mates[rng.Intn(len(mates))]
			return fmt.Sprintf("%s.%s %s %s.%s", o.alias, c.Name, pick(rng, cmpOps), o.alias, m.Name), true
		}
	}
	op := pick(rng, cmpOps)
	switch c.Type {
	case sqltypes.KindString:
		return fmt.Sprintf("%s.%s %s '%s'", o.alias, c.Name, op, pick(rng, predStrings)), true
	default: // int, float: integer constants keep A4's linear form
		return fmt.Sprintf("%s.%s %s %d", o.alias, c.Name, op, pick(rng, predInts)), true
	}
}

// likePatterns are drawn so the dataset string pool (strPool: single
// characters plus a couple of two-character strings) contains matches AND
// misses for every pattern — a pattern no data can match never separates
// its mutants.
var likePatterns = []string{"u", "u%", "%v", "_", "%", "u_", "_v", "%w%", "v%"}

// likeSelection builds one [NOT] LIKE conjunct over a string column.
func likeSelection(rng *rand.Rand, cfg Config, occs []occ) (string, bool) {
	if cfg.LikeProb <= 0 {
		return "", false
	}
	o := pick(rng, occs)
	var cols []schema.Attribute
	for _, a := range o.rel.Attrs {
		if a.Type == sqltypes.KindString {
			cols = append(cols, a)
		}
	}
	if len(cols) == 0 {
		return "", false
	}
	c := cols[rng.Intn(len(cols))]
	not := ""
	if chance(rng, 0.4) {
		not = "NOT "
	}
	return fmt.Sprintf("%s.%s %sLIKE '%s'", o.alias, c.Name, not, pick(rng, likePatterns)), true
}

// subqueryCond builds one WHERE subquery conjunct: attr [NOT] IN
// (SELECT ...) or [NOT] EXISTS (SELECT ...). EXISTS blocks are always
// correlated (an uncorrelated, predicate-less NOT EXISTS block is outside
// the solver's slot model — it would demand an empty relation). Inner
// conjuncts are plain comparisons; LIKE stays in the outer WHERE, where
// the generator produces pattern kill goals.
func subqueryCond(rng *rand.Rand, cfg Config, sch *schema.Schema, occs []occ) (string, bool) {
	rels := orderedRelations(sch)
	// See Config.SubqRepeatOK: the completeness grammar requires all
	// relations across the outer FROM and the block pairwise distinct, so
	// bail on self-joined outers and draw the block's relation from the
	// unused ones.
	if !cfg.SubqRepeatOK {
		used := map[string]bool{}
		for _, o := range occs {
			if used[o.rel.Name] {
				return "", false
			}
			used[o.rel.Name] = true
		}
		eligible := rels[:0:0]
		for _, r := range rels {
			if !used[r.Name] {
				eligible = append(eligible, r)
			}
		}
		if len(eligible) == 0 {
			return "", false
		}
		rels = eligible
	}
	inner := pick(rng, rels)
	const innerAlias = "sq0"

	// Column pools: int/string only (assumption A4's comparison class).
	innerCols := func(kind sqltypes.Kind) []schema.Attribute {
		var out []schema.Attribute
		for _, a := range inner.Attrs {
			if a.Type == kind {
				out = append(out, a)
			}
		}
		return out
	}
	outerCols := func(kind sqltypes.Kind) (occ, string, bool) {
		var cands []struct {
			o occ
			c string
		}
		for _, o := range occs {
			for _, a := range o.rel.Attrs {
				if a.Type == kind {
					cands = append(cands, struct {
						o occ
						c string
					}{o, a.Name})
				}
			}
		}
		if len(cands) == 0 {
			return occ{}, "", false
		}
		p := pick(rng, cands)
		return p.o, p.c, true
	}

	kind := sqltypes.KindInt
	if chance(rng, 0.3) {
		kind = sqltypes.KindString
	}
	ics := innerCols(kind)
	oo, oc, ok := outerCols(kind)
	if len(ics) == 0 || !ok {
		return "", false
	}
	ic := ics[rng.Intn(len(ics))]
	// Comparing a column against itself over the same relation makes the
	// connective implied-true/false on every real tuple combination
	// (every row matches itself): NOT forms then admit rows only through
	// outer-join NULL padding, which the solver's slot model cannot
	// represent, voiding the completeness guarantee. Keep such blocks out
	// of the grammar.
	if inner.Name == oo.rel.Name && ic.Name == oc {
		return "", false
	}

	// Inner selections on the block's own columns.
	var innerConds []string
	for i, n := 0, rng.Intn(2); i < n; i++ {
		if s, sok := selection(rng, []occ{{alias: innerAlias, rel: inner}}); sok {
			innerConds = append(innerConds, s)
		}
	}

	if chance(rng, 0.5) {
		// [NOT] EXISTS with a correlation equality.
		innerConds = append([]string{fmt.Sprintf("%s.%s = %s.%s", innerAlias, ic.Name, oo.alias, oc)}, innerConds...)
		not := ""
		if chance(rng, 0.5) {
			not = "NOT "
		}
		return fmt.Sprintf("%sEXISTS (SELECT * FROM %s AS %s WHERE %s)",
			not, inner.Name, innerAlias, strings.Join(innerConds, " AND ")), true
	}

	// See Config.SubqBareOK: the completeness grammar requires IN blocks
	// to carry at least one inner conjunct, so pad-safety goals can empty
	// the block of qualifying rows without demanding an empty relation.
	if len(innerConds) == 0 && !cfg.SubqBareOK {
		s, sok := selection(rng, []occ{{alias: innerAlias, rel: inner}})
		if !sok {
			return "", false
		}
		innerConds = append(innerConds, s)
	}
	not := ""
	if chance(rng, 0.5) {
		not = "NOT "
	}
	where := ""
	if len(innerConds) > 0 {
		where = " WHERE " + strings.Join(innerConds, " AND ")
	}
	return fmt.Sprintf("%s.%s %sIN (SELECT %s.%s FROM %s AS %s%s)",
		oo.alias, oc, not, innerAlias, ic.Name, inner.Name, innerAlias, where), true
}

type selectSpec struct {
	list    string // "SELECT ..." prefix included
	groupBy string
	having  string
}

// selectClause picks the projection: an aggregate head with probability
// AggProb, otherwise SELECT * / an explicit qualified column list,
// optionally DISTINCT.
func selectClause(rng *rand.Rand, cfg Config, occs []occ) selectSpec {
	type col struct {
		ref  string
		kind sqltypes.Kind
	}
	var all []col
	for _, o := range occs {
		for _, a := range o.rel.Attrs {
			all = append(all, col{ref: o.alias + "." + a.Name, kind: a.Type})
		}
	}

	if cfg.AllowAgg && chance(rng, cfg.AggProb) {
		var groups []string
		if cfg.AggVisibility && len(occs) > 1 {
			// One grouping attribute per occurrence: join-type mutants
			// padding any side stay observable through the group keys.
			for _, o := range occs {
				a := o.rel.Attrs[rng.Intn(len(o.rel.Attrs))]
				groups = append(groups, o.alias+"."+a.Name)
			}
		} else {
			for i, n := 0, rng.Intn(3); i < n && len(all) > 0; i++ {
				c := all[rng.Intn(len(all))]
				dup := false
				for _, g := range groups {
					if g == c.ref {
						dup = true
					}
				}
				if !dup {
					groups = append(groups, c.ref)
				}
			}
		}
		var numeric, ordered []col
		for _, c := range all {
			if c.kind == sqltypes.KindInt || c.kind == sqltypes.KindFloat {
				numeric = append(numeric, c)
			}
			if c.kind != sqltypes.KindBool {
				ordered = append(ordered, c) // MIN/MAX need a total order
			}
		}
		var calls []string
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			distinct := ""
			if cfg.AllowDistinct && chance(rng, 0.2) {
				distinct = "DISTINCT "
			}
			switch rng.Intn(6) {
			case 0:
				calls = append(calls, "COUNT(*)")
			case 1:
				calls = append(calls, fmt.Sprintf("COUNT(%s%s)", distinct, all[rng.Intn(len(all))].ref))
			case 2, 3:
				if len(ordered) == 0 {
					calls = append(calls, "COUNT(*)")
					continue
				}
				fn := pick(rng, []string{"MIN", "MAX"})
				calls = append(calls, fmt.Sprintf("%s(%s)", fn, ordered[rng.Intn(len(ordered))].ref))
			default:
				if len(numeric) == 0 {
					calls = append(calls, "COUNT(*)")
					continue
				}
				fn := pick(rng, []string{"SUM", "AVG"})
				calls = append(calls, fmt.Sprintf("%s(%s%s)", fn, distinct, numeric[rng.Intn(len(numeric))].ref))
			}
		}
		// HAVING: only on grouped queries, and single-occurrence unless
		// HavingJoinOK (the COUNT group-size ladder is exact only when the
		// join does not inflate the group's row count). DISTINCT aggregates
		// are excluded — the solver has no non-collapsing encoding for
		// DISTINCT SUM/AVG under HAVING.
		having := ""
		if cfg.HavingProb > 0 && len(groups) > 0 &&
			(cfg.HavingJoinOK || len(occs) == 1) && chance(rng, cfg.HavingProb) {
			switch rng.Intn(4) {
			case 0:
			case 1:
				if len(numeric) > 0 {
					fn := pick(rng, []string{"SUM", "AVG"})
					having = fmt.Sprintf("%s(%s) %s %d",
						fn, numeric[rng.Intn(len(numeric))].ref, pick(rng, cmpOps), pick(rng, predInts))
				}
			default:
				if len(ordered) > 0 {
					fn := pick(rng, []string{"MIN", "MAX"})
					c := ordered[rng.Intn(len(ordered))]
					if c.kind == sqltypes.KindString {
						having = fmt.Sprintf("%s(%s) %s '%s'",
							fn, c.ref, pick(rng, cmpOps), pick(rng, predStrings))
					} else {
						having = fmt.Sprintf("%s(%s) %s %d",
							fn, c.ref, pick(rng, cmpOps), pick(rng, predInts))
					}
				}
			}
			if having == "" {
				// COUNT ladder: small thresholds the dataset generator's
				// MaxRows can straddle in both directions.
				having = fmt.Sprintf("COUNT(*) %s %d", pick(rng, cmpOps), 1+rng.Intn(2))
			}
		}
		items := append(append([]string{}, groups...), calls...)
		return selectSpec{
			list:    "SELECT " + strings.Join(items, ", "),
			groupBy: strings.Join(groups, ", "),
			having:  having,
		}
	}

	distinct := ""
	if cfg.AllowDistinct && chance(rng, 0.3) {
		distinct = "DISTINCT "
	}
	if distinct == "" && chance(rng, 0.5) {
		return selectSpec{list: "SELECT *"}
	}
	n := 1 + rng.Intn(4)
	if n > len(all) {
		n = len(all)
	}
	perm := rng.Perm(len(all))
	cols := make([]string, n)
	for i := 0; i < n; i++ {
		cols[i] = all[perm[i]].ref
	}
	return selectSpec{list: "SELECT " + distinct + strings.Join(cols, ", ")}
}
