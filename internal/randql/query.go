package randql

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/qtree"
	"repro/internal/schema"
	"repro/internal/sqltypes"
)

// Predicate constant pools. The dataset generator draws values from the
// same neighbourhoods (intPool / strPool in dataset.go) so random data
// actually straddles the predicate boundaries instead of trivially
// satisfying or falsifying every conjunct.
var (
	predInts    = []int{-2, -1, 0, 1, 2, 3, 4, 5, 6}
	predStrings = []string{"u", "v", "w", "x"}
	cmpOps      = []string{"=", "<>", "<", "<=", ">", ">="}
)

// occ is one FROM-clause occurrence of a relation under an alias.
type occ struct {
	alias string
	rel   *schema.Relation
}

// randomQuery generates a random single-block SELECT over sch as SQL
// text, building it through qtree.BuildSQL so every structural
// restriction the builder enforces (outer-join connectivity, FULL OUTER
// visibility A7/A8, natural-join ambiguity) is applied by construction:
// candidates the builder rejects are simply re-rolled. The retry loop is
// bounded; the final fallback "SELECT * FROM t0" is always legal because
// randomSchema always emits t0.
func randomQuery(rng *rand.Rand, cfg Config, sch *schema.Schema) (string, *qtree.Query, error) {
	for attempt := 0; attempt < 400; attempt++ {
		sql, ok := trySQL(rng, cfg, sch)
		if !ok {
			continue
		}
		q, err := qtree.BuildSQL(sch, sql)
		if err != nil {
			continue
		}
		if cfg.RequireConnected && !joinConnected(q) {
			continue
		}
		return sql, q, nil
	}
	sql := "SELECT * FROM t0"
	q, err := qtree.BuildSQL(sch, sql)
	if err != nil {
		return "", nil, fmt.Errorf("randql: fallback query rejected: %w", err)
	}
	return sql, q, nil
}

// trySQL assembles one candidate query. It may bail out (ok=false) when
// a random choice paints it into a corner (e.g. no legal join condition).
func trySQL(rng *rand.Rand, cfg Config, sch *schema.Schema) (string, bool) {
	rels := orderedRelations(sch)
	if len(rels) == 0 {
		return "", false
	}

	// Pick occurrences (with replacement) and assign aliases: the bare
	// relation name when it appears once, rel_N suffixes otherwise.
	k := 1
	if cfg.MaxOccs > 1 {
		k = 1 + rng.Intn(cfg.MaxOccs)
	}
	chosen := make([]*schema.Relation, k)
	count := map[string]int{}
	for i := range chosen {
		chosen[i] = pick(rng, rels)
		count[chosen[i].Name]++
	}
	seen := map[string]int{}
	occs := make([]occ, k)
	for i, r := range chosen {
		alias := r.Name
		if count[r.Name] > 1 {
			seen[r.Name]++
			alias = fmt.Sprintf("%s_%d", r.Name, seen[r.Name])
		}
		occs[i] = occ{alias: alias, rel: r}
	}

	var from string
	var whereConds []string
	if k == 1 || chance(rng, 0.4) {
		// Comma style: cross product in FROM, join conditions in WHERE.
		parts := make([]string, k)
		for i, o := range occs {
			parts[i] = fromItem(o)
		}
		from = strings.Join(parts, ", ")
		for i := 1; i < k; i++ {
			if chance(rng, 0.8) {
				if cond, ok := joinCond(rng, occs[:i], occs[i], false); ok {
					whereConds = append(whereConds, cond...)
				}
			}
		}
	} else {
		// Left-deep join chain with explicit join types.
		from = fromItem(occs[0])
		for i := 1; i < k; i++ {
			jt := joinType(rng, cfg)
			natural := cfg.AllowNatural && chance(rng, 0.3) && naturalOK(occs[:i], occs[i])
			if natural {
				from = fmt.Sprintf("%s NATURAL %s %s", from, jt, fromItem(occs[i]))
				continue
			}
			outer := jt != "JOIN"
			cond, ok := joinCond(rng, occs[:i], occs[i], outer)
			if !ok {
				if outer {
					return "", false // outer joins require an ON condition
				}
				from = fmt.Sprintf("%s CROSS JOIN %s", from, fromItem(occs[i]))
				continue
			}
			from = fmt.Sprintf("%s %s %s ON %s", from, jt, fromItem(occs[i]), strings.Join(cond, " AND "))
		}
	}

	// Selections.
	if cfg.MaxSelections > 0 {
		for i, n := 0, rng.Intn(cfg.MaxSelections+1); i < n; i++ {
			if s, ok := selection(rng, occs); ok {
				whereConds = append(whereConds, s)
			}
		}
	}
	if cfg.AllowConstPred && chance(rng, 0.1) {
		whereConds = append(whereConds, pick(rng, []string{"1 = 2", "1 = 1", "3 > 2", "2 < 1"}))
	}

	sel := selectClause(rng, cfg, occs)

	var sb strings.Builder
	sb.WriteString(sel.list)
	sb.WriteString(" FROM ")
	sb.WriteString(from)
	if len(whereConds) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(whereConds, " AND "))
	}
	if sel.groupBy != "" {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(sel.groupBy)
	}
	return sb.String(), true
}

// orderedRelations returns t0, t1, … in index order (not lexicographic,
// which would misplace t10). Relations not matching the tN convention
// are appended in name order.
func orderedRelations(sch *schema.Schema) []*schema.Relation {
	var out []*schema.Relation
	for i := 0; ; i++ {
		r := sch.Relation(fmt.Sprintf("t%d", i))
		if r == nil {
			break
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		out = sch.Relations()
	}
	return out
}

func fromItem(o occ) string {
	if o.alias == o.rel.Name {
		return o.rel.Name
	}
	return fmt.Sprintf("%s AS %s", o.rel.Name, o.alias)
}

func joinType(rng *rand.Rand, cfg Config) string {
	if cfg.AllowOuter && chance(rng, 0.45) {
		return pick(rng, []string{"LEFT OUTER JOIN", "RIGHT OUTER JOIN", "FULL OUTER JOIN"})
	}
	return "JOIN"
}

// naturalOK reports whether a NATURAL join of the accumulated left side
// with right is unambiguous: at least one shared attribute name, and no
// shared name exposed more than once on the left.
func naturalOK(left []occ, right occ) bool {
	leftCount := map[string]int{}
	for _, o := range left {
		for _, a := range o.rel.Attrs {
			leftCount[a.Name]++
		}
	}
	common := 0
	for _, a := range right.rel.Attrs {
		switch leftCount[a.Name] {
		case 0:
		case 1:
			common++
		default:
			return false // ambiguous on the left side
		}
	}
	return common > 0
}

// joinCond builds the ON (or WHERE, comma-style) conjuncts connecting
// right to one of the left occurrences. FK column pairs are preferred
// (composite FKs emit one equality per column pair, keeping referential
// joins aligned with the schema); otherwise a random same-kind column
// pair is equated. Inner joins occasionally get a non-equi or arithmetic
// condition instead; outer joins always get plain equalities so the
// builder's connectivity requirement is met.
func joinCond(rng *rand.Rand, left []occ, right occ, outer bool) ([]string, bool) {
	type fkPair struct {
		l, r         occ
		lcols, rcols []string
	}
	var fks []fkPair
	for _, lo := range left {
		for _, fk := range right.rel.ForeignKeys {
			if fk.RefTable == lo.rel.Name {
				fks = append(fks, fkPair{l: lo, r: right, lcols: fk.RefColumns, rcols: fk.Columns})
			}
		}
		for _, fk := range lo.rel.ForeignKeys {
			if fk.RefTable == right.rel.Name {
				fks = append(fks, fkPair{l: lo, r: right, lcols: fk.Columns, rcols: fk.RefColumns})
			}
		}
	}
	if len(fks) > 0 && chance(rng, 0.7) {
		p := pick(rng, fks)
		conds := make([]string, len(p.lcols))
		for i := range p.lcols {
			conds[i] = fmt.Sprintf("%s.%s = %s.%s", p.l.alias, p.lcols[i], p.r.alias, p.rcols[i])
		}
		return conds, true
	}

	// Random same-kind column pair.
	lo := pick(rng, left)
	type pair struct {
		lc, rc string
		kind   sqltypes.Kind
	}
	var pairs []pair
	for _, la := range lo.rel.Attrs {
		for _, ra := range right.rel.Attrs {
			if la.Type == ra.Type && la.Type != sqltypes.KindBool {
				pairs = append(pairs, pair{lc: la.Name, rc: ra.Name, kind: la.Type})
			}
		}
	}
	if len(pairs) == 0 {
		return nil, false
	}
	p := pick(rng, pairs)
	if !outer && p.kind == sqltypes.KindInt {
		if chance(rng, 0.12) {
			op := pick(rng, []string{"<", "<=", ">", ">=", "<>"})
			return []string{fmt.Sprintf("%s.%s %s %s.%s", lo.alias, p.lc, op, right.alias, p.rc)}, true
		}
		if chance(rng, 0.1) {
			return []string{fmt.Sprintf("%s.%s + %d = %s.%s", lo.alias, p.lc, 1+rng.Intn(2), right.alias, p.rc)}, true
		}
	}
	return []string{fmt.Sprintf("%s.%s = %s.%s", lo.alias, p.lc, right.alias, p.rc)}, true
}

// selection builds one WHERE conjunct local to a single occurrence:
// column OP constant on int/float/string columns, or occasionally a
// same-occurrence column comparison. Boolean columns are skipped (the
// comparison grammar is A4's int/string class plus floats for the
// differential oracle).
func selection(rng *rand.Rand, occs []occ) (string, bool) {
	o := pick(rng, occs)
	var cols []schema.Attribute
	for _, a := range o.rel.Attrs {
		if a.Type != sqltypes.KindBool {
			cols = append(cols, a)
		}
	}
	if len(cols) == 0 {
		return "", false
	}
	c := cols[rng.Intn(len(cols))]
	// Same-occurrence column-column comparison.
	if chance(rng, 0.2) {
		var mates []schema.Attribute
		for _, a := range cols {
			if a.Name != c.Name && a.Type == c.Type {
				mates = append(mates, a)
			}
		}
		if len(mates) > 0 {
			m := mates[rng.Intn(len(mates))]
			return fmt.Sprintf("%s.%s %s %s.%s", o.alias, c.Name, pick(rng, cmpOps), o.alias, m.Name), true
		}
	}
	op := pick(rng, cmpOps)
	switch c.Type {
	case sqltypes.KindString:
		return fmt.Sprintf("%s.%s %s '%s'", o.alias, c.Name, op, pick(rng, predStrings)), true
	default: // int, float: integer constants keep A4's linear form
		return fmt.Sprintf("%s.%s %s %d", o.alias, c.Name, op, pick(rng, predInts)), true
	}
}

type selectSpec struct {
	list    string // "SELECT ..." prefix included
	groupBy string
}

// selectClause picks the projection: an aggregate head with probability
// AggProb, otherwise SELECT * / an explicit qualified column list,
// optionally DISTINCT.
func selectClause(rng *rand.Rand, cfg Config, occs []occ) selectSpec {
	type col struct {
		ref  string
		kind sqltypes.Kind
	}
	var all []col
	for _, o := range occs {
		for _, a := range o.rel.Attrs {
			all = append(all, col{ref: o.alias + "." + a.Name, kind: a.Type})
		}
	}

	if cfg.AllowAgg && chance(rng, cfg.AggProb) {
		var groups []string
		if cfg.AggVisibility && len(occs) > 1 {
			// One grouping attribute per occurrence: join-type mutants
			// padding any side stay observable through the group keys.
			for _, o := range occs {
				a := o.rel.Attrs[rng.Intn(len(o.rel.Attrs))]
				groups = append(groups, o.alias+"."+a.Name)
			}
		} else {
			for i, n := 0, rng.Intn(3); i < n && len(all) > 0; i++ {
				c := all[rng.Intn(len(all))]
				dup := false
				for _, g := range groups {
					if g == c.ref {
						dup = true
					}
				}
				if !dup {
					groups = append(groups, c.ref)
				}
			}
		}
		var numeric, ordered []col
		for _, c := range all {
			if c.kind == sqltypes.KindInt || c.kind == sqltypes.KindFloat {
				numeric = append(numeric, c)
			}
			if c.kind != sqltypes.KindBool {
				ordered = append(ordered, c) // MIN/MAX need a total order
			}
		}
		var calls []string
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			distinct := ""
			if cfg.AllowDistinct && chance(rng, 0.2) {
				distinct = "DISTINCT "
			}
			switch rng.Intn(6) {
			case 0:
				calls = append(calls, "COUNT(*)")
			case 1:
				calls = append(calls, fmt.Sprintf("COUNT(%s%s)", distinct, all[rng.Intn(len(all))].ref))
			case 2, 3:
				if len(ordered) == 0 {
					calls = append(calls, "COUNT(*)")
					continue
				}
				fn := pick(rng, []string{"MIN", "MAX"})
				calls = append(calls, fmt.Sprintf("%s(%s)", fn, ordered[rng.Intn(len(ordered))].ref))
			default:
				if len(numeric) == 0 {
					calls = append(calls, "COUNT(*)")
					continue
				}
				fn := pick(rng, []string{"SUM", "AVG"})
				calls = append(calls, fmt.Sprintf("%s(%s%s)", fn, distinct, numeric[rng.Intn(len(numeric))].ref))
			}
		}
		items := append(append([]string{}, groups...), calls...)
		return selectSpec{
			list:    "SELECT " + strings.Join(items, ", "),
			groupBy: strings.Join(groups, ", "),
		}
	}

	distinct := ""
	if cfg.AllowDistinct && chance(rng, 0.3) {
		distinct = "DISTINCT "
	}
	if distinct == "" && chance(rng, 0.5) {
		return selectSpec{list: "SELECT *"}
	}
	n := 1 + rng.Intn(4)
	if n > len(all) {
		n = len(all)
	}
	perm := rng.Perm(len(all))
	cols := make([]string, n)
	for i := 0; i < n; i++ {
		cols[i] = all[perm[i]].ref
	}
	return selectSpec{list: "SELECT " + distinct + strings.Join(cols, ", ")}
}
