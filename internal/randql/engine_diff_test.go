package randql

import (
	"flag"
	"testing"

	"repro/internal/mutation"
	"repro/internal/schema"
)

var flagEngineDiff = flag.Int("randql.engine-diff", 25, "number of compiled-vs-interpreted kill-matrix cases")

// TestCompiledInterpDifferential extends the differential oracle to the
// kill-matrix level: for random queries drawn from the full grammar, the
// compiled columnar executor and the reference interpreter must produce
// cell-identical kill matrices over the same mutant space and datasets.
// This is the corpus-wide form of the NoCompiledEngine ablation
// guarantee — TestDifferentialOracle checks single results, this checks
// the matrix the generator's fitness signal is built from.
func TestCompiledInterpDifferential(t *testing.T) {
	cfg := DefaultConfig()
	const datasetsPerCase = 2
	cases, cells := 0, int64(0)
	for i := 0; i < *flagEngineDiff; i++ {
		// Offset past the oracle and completeness seed ranges so the
		// corpora don't overlap.
		seed := *flagSeed + 30000 + int64(i)
		c, err := NewCase(seed, cfg)
		if err != nil {
			t.Fatalf("NewCase(%d): %v", seed, err)
		}
		if !joinConnected(c.Query) {
			// mutation.Space rejects cross products; the grammar allows them.
			continue
		}
		var datasets []*schema.Dataset
		for d := 0; d < datasetsPerCase; d++ {
			ds, err := c.NextDataset()
			if err != nil {
				t.Fatalf("seed %d dataset %d: %v", seed, d, err)
			}
			datasets = append(datasets, ds)
		}
		ms, err := mutation.Space(c.Query, mutation.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: mutant space: %v", seed, err)
		}
		if len(ms) == 0 {
			continue
		}
		compiled, err := mutation.EvaluateOpts(c.Query, ms, datasets, mutation.EvalOptions{Parallelism: 1})
		if err != nil {
			t.Fatalf("seed %d: compiled evaluation: %v", seed, err)
		}
		interp, err := mutation.EvaluateOpts(c.Query, ms, datasets, mutation.EvalOptions{Parallelism: 1, NoCompiledEngine: true})
		if err != nil {
			t.Fatalf("seed %d: interpreted evaluation: %v", seed, err)
		}
		for mi := range ms {
			for di := range datasets {
				if compiled.Killed[mi][di] != interp.Killed[mi][di] {
					saveFailure(t, seed, c.Repro(datasets[di]))
					t.Fatalf("seed %d: kill-matrix disagreement: mutant %q dataset %d: compiled=%v interpreted=%v\nquery: %s",
						seed, ms[mi].Desc, di, compiled.Killed[mi][di], interp.Killed[mi][di], c.SQL)
				}
			}
		}
		cases++
		cells += int64(len(ms)) * int64(len(datasets))
	}
	t.Logf("engine differential: %d cases, %d kill-matrix cells, zero divergences", cases, cells)
	if cases < 10 {
		t.Errorf("only %d cases with non-empty mutant spaces, want >= 10", cases)
	}
}
