package randql

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/sqltypes"
)

// Dataset value pools. Integers and strings deliberately overlap the
// predicate constant pools (predInts/predStrings in query.go) with a
// one-off margin on each side, so comparisons land on all three of
// below/at/above the constant.
var (
	intPool = []int64{-1, 0, 1, 2, 3, 4, 5, 6, 7}
	// Two-character entries give every likePatterns wildcard pattern
	// ("u%", "u_", "%w%", …) both matches and misses in random data.
	strPool   = []string{"t", "u", "v", "w", "x", "y", "uv", "wx"}
	floatPool = []float64{-0.5, 0, 1, 2.5, 3, 4.5}
)

// randomDataset generates a dataset for sch that satisfies every schema
// constraint by construction: relations are filled in t0..tn order
// (randomSchema only points FKs backwards, so that order is topological),
// FK columns copy values out of a previously generated referenced row,
// and rows whose primary key collides with an earlier row are re-rolled
// a few times then dropped. The result is validated with CheckDataset —
// an error here is a randql bug, not bad luck.
func randomDataset(rng *rand.Rand, cfg Config, sch *schema.Schema, purpose string) (*schema.Dataset, error) {
	ds := schema.NewDataset(purpose)
	for _, rel := range orderedRelations(sch) {
		nRows := 0
		if !chance(rng, 0.1) { // occasionally leave a relation empty
			nRows = 1 + rng.Intn(cfg.MaxRows)
		}
		seenPK := map[string]bool{}
		for i := 0; i < nRows; i++ {
			for try := 0; try < 6; try++ {
				row, ok := randomRow(rng, cfg, sch, rel, ds)
				if !ok {
					break // referenced relation is empty: no legal row exists
				}
				key, hasPK := pkOf(rel, row)
				if hasPK && seenPK[key] {
					continue // PK collision: re-roll
				}
				seenPK[key] = true
				ds.Insert(rel.Name, row)
				break
			}
		}
	}
	if err := sch.CheckDataset(ds); err != nil {
		return nil, fmt.Errorf("randql: generated dataset violates schema: %w", err)
	}
	return ds, nil
}

// randomRow builds one row of rel: random typed values first (NULL with
// NullProb in nullable columns), then FK columns overwritten from a
// random row of each referenced relation.
func randomRow(rng *rand.Rand, cfg Config, sch *schema.Schema, rel *schema.Relation, ds *schema.Dataset) (sqltypes.Row, bool) {
	row := make(sqltypes.Row, len(rel.Attrs))
	for i, a := range rel.Attrs {
		if !a.NotNull && chance(rng, cfg.NullProb) {
			row[i] = sqltypes.Null()
			continue
		}
		switch a.Type {
		case sqltypes.KindInt:
			row[i] = sqltypes.NewInt(pick(rng, intPool))
		case sqltypes.KindString:
			row[i] = sqltypes.NewString(pick(rng, strPool))
		case sqltypes.KindFloat:
			row[i] = sqltypes.NewFloat(pick(rng, floatPool))
		case sqltypes.KindBool:
			row[i] = sqltypes.NewBool(chance(rng, 0.5))
		default:
			row[i] = sqltypes.Null()
		}
	}
	for _, fk := range rel.ForeignKeys {
		refRows := ds.Rows(fk.RefTable)
		if len(refRows) == 0 {
			return nil, false
		}
		ref := refRows[rng.Intn(len(refRows))]
		refRel := sch.Relation(fk.RefTable)
		for k, c := range fk.Columns {
			row[rel.AttrPos(c)] = ref[refRel.AttrPos(fk.RefColumns[k])]
		}
	}
	return row, true
}

func pkOf(rel *schema.Relation, row sqltypes.Row) (string, bool) {
	if len(rel.PrimaryKey) == 0 {
		return "", false
	}
	key := ""
	for _, c := range rel.PrimaryKey {
		v := row[rel.AttrPos(c)]
		key += v.String() + "\x00"
	}
	return key, true
}
