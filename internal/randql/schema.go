package randql

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/sqltypes"
)

// dataColNames is the global pool of non-key column names. A name's kind
// is fixed once per schema, so the same name in two relations always has
// the same type — which is what makes NATURAL joins over data columns
// well-typed and lets the query generator match columns by kind.
var dataColNames = []string{"a", "b", "c", "d", "e"}

// randomSchema generates a random acyclic schema of 2..MaxRelations
// relations named t0, t1, … with the paper's constraint repertoire (A1):
//
//   - single INT primary keys (ti_id) or, with CompositeProb, composite
//     keys (ti_k1, ti_k2);
//   - foreign keys from later relations to earlier ones, either via
//     dedicated columns named after the target's key (so NATURAL joins
//     align with FK joins) or — for single keys — by declaring the
//     relation's own primary key as the FK, which is what produces the
//     transitive key chains of §V-B (t2_id → t1_id → t0_id closes to
//     t2_id → t0_id);
//   - composite FKs whenever the target's key is composite;
//   - data columns drawn from a shared name pool with per-schema kinds.
//
// Relations only reference earlier relations, so t0..tn is already a
// topological order (referenced relations first) — the dataset generator
// relies on it.
func randomSchema(rng *rand.Rand, cfg Config) (*schema.Schema, error) {
	n := 2
	if cfg.MaxRelations > 2 {
		n = 2 + rng.Intn(cfg.MaxRelations-1)
	}

	// Fix the kind of every data-column name for this schema.
	kinds := []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindInt, sqltypes.KindString}
	if cfg.AllowFloats {
		kinds = append(kinds, sqltypes.KindFloat)
	}
	if cfg.AllowBools {
		kinds = append(kinds, sqltypes.KindBool)
	}
	colKind := map[string]sqltypes.Kind{}
	for _, name := range dataColNames {
		colKind[name] = pick(rng, kinds)
	}

	sch := schema.New()
	type keyInfo struct{ cols []string } // primary-key columns of ti
	keys := make([]keyInfo, 0, n)

	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%d", i)
		var attrs []schema.Attribute
		var pk []string
		var fks []schema.ForeignKey
		used := map[string]bool{}

		if chance(rng, cfg.CompositeProb) {
			pk = []string{fmt.Sprintf("t%d_k1", i), fmt.Sprintf("t%d_k2", i)}
		} else {
			pk = []string{fmt.Sprintf("t%d_id", i)}
		}
		for _, c := range pk {
			attrs = append(attrs, schema.Attribute{Name: c, Type: sqltypes.KindInt, NotNull: true})
			used[c] = true
		}

		// Foreign keys to earlier relations.
		if i > 0 && chance(rng, cfg.FKProb) {
			j := rng.Intn(i)
			target := keys[j]
			if len(pk) == 1 && len(target.cols) == 1 && chance(rng, 0.4) {
				// §V-B transitive chain: our own key references the
				// target's key.
				fks = append(fks, schema.ForeignKey{Columns: pk, RefTable: fmt.Sprintf("t%d", j), RefColumns: target.cols})
			} else {
				// Dedicated FK columns named after the target's key
				// (composite when the target's key is composite).
				cols := make([]string, len(target.cols))
				clash := false
				for k, rc := range target.cols {
					cols[k] = rc
					if used[rc] {
						clash = true
					}
				}
				if !clash {
					for _, c := range cols {
						attrs = append(attrs, schema.Attribute{Name: c, Type: sqltypes.KindInt, NotNull: true})
						used[c] = true
					}
					fks = append(fks, schema.ForeignKey{Columns: cols, RefTable: fmt.Sprintf("t%d", j), RefColumns: target.cols})
				}
			}
		}

		// Data columns.
		nData := 1
		if cfg.MaxDataCols > 1 {
			nData = 1 + rng.Intn(cfg.MaxDataCols)
		}
		perm := rng.Perm(len(dataColNames))
		for _, pi := range perm[:nData] {
			c := dataColNames[pi]
			if used[c] {
				continue
			}
			used[c] = true
			notNull := true
			if cfg.AllowNullable {
				notNull = chance(rng, 0.5)
			}
			attrs = append(attrs, schema.Attribute{Name: c, Type: colKind[c], NotNull: notNull})
		}

		rel, err := schema.NewRelation(name, attrs, pk, fks)
		if err != nil {
			return nil, fmt.Errorf("randql: relation %s: %w", name, err)
		}
		if err := sch.AddRelation(rel); err != nil {
			return nil, err
		}
		keys = append(keys, keyInfo{cols: pk})
	}
	if err := sch.Validate(); err != nil {
		return nil, fmt.Errorf("randql: generated schema invalid: %w", err)
	}
	return sch, nil
}
