// Package randql is the randomized differential-testing subsystem: a
// seeded, deterministic generator of (schema, query, input data) triples
// covering the paper's query class, plus the harnesses that cross-check
// the execution engine against the independent reference evaluator
// (internal/refeval) and assert the paper's suite-completeness guarantee
// end-to-end (core.Generate → mutation.Evaluate kills every
// non-equivalent mutant).
//
// Determinism rules: every random artifact of a Case is derived from a
// single int64 seed through one math/rand stream consumed in a fixed
// order (schema first, then query, then each dataset in index order).
// Re-running with the same seed — from the tests, the nightly soak, or
// the cmd/randql CLI — reproduces the identical case byte for byte.
package randql

import (
	"math/rand"
)

// Config bounds the random grammar. Two presets matter: DefaultConfig
// exercises the full engine surface (NULLs, floats, booleans, outer and
// natural joins, DISTINCT, constant conjuncts) for the differential
// oracle, while CompletenessConfig restricts to the class the
// constraint-based generator guarantees completeness for (§IV-V:
// integer/string attributes, NOT NULL columns, no constant conjuncts).
type Config struct {
	// Schema shape.
	MaxRelations  int     // relations per schema (≥ 2)
	MaxDataCols   int     // non-key columns per relation
	FKProb        float64 // probability a relation gains an FK to an earlier one
	CompositeProb float64 // probability a relation uses a composite primary key
	AllowFloats   bool    // FLOAT data columns
	AllowBools    bool    // BOOLEAN data columns
	AllowNullable bool    // data columns without NOT NULL

	// Query shape.
	MaxOccs        int     // relation occurrences per query (≥ 1)
	AllowOuter     bool    // LEFT/RIGHT/FULL OUTER JOIN
	AllowNatural   bool    // NATURAL JOIN
	AllowAgg       bool    // GROUP BY + aggregates
	AllowDistinct  bool    // SELECT DISTINCT
	AllowConstPred bool    // constant conjuncts like 1 = 2
	MaxSelections  int     // extra WHERE conjuncts
	AggProb        float64 // probability a query aggregates
	// RequireConnected rejects queries whose join graph has more than
	// one component. The mutant space (and hence the completeness
	// guarantee) is only defined over connected queries; the
	// differential oracle happily exercises cross products.
	RequireConnected bool
	// AggVisibility forces aggregated multi-occurrence queries to group
	// by at least one attribute of EVERY occurrence. This is the
	// aggregation analogue of the paper's visibility assumptions
	// (A6–A8): a join-type mutant that pads one side with NULLs is only
	// observable through GROUP BY if some grouping attribute exposes
	// the padded side — otherwise the padded rows merge into existing
	// groups and NULL-ignoring aggregates (MIN, SUM, …) hide them, so
	// no dataset can kill the mutant and the completeness guarantee
	// does not extend to such heads. (randql seed 10009 is the
	// counterexample that pinned this down.)
	AggVisibility bool

	// Dataset shape.
	MaxRows  int     // rows per relation
	NullProb float64 // probability of NULL in a nullable column
}

// DefaultConfig is the differential-oracle grammar: everything the
// engine supports, NULL-prone data included.
func DefaultConfig() Config {
	return Config{
		MaxRelations:  4,
		MaxDataCols:   3,
		FKProb:        0.5,
		CompositeProb: 0.25,
		AllowFloats:   true,
		AllowBools:    true,
		AllowNullable: true,
		MaxOccs:       3,
		AllowOuter:    true,
		AllowNatural:  true,
		AllowAgg:      true,
		AllowDistinct: true,

		AllowConstPred: true,
		MaxSelections:  3,
		AggProb:        0.3,
		MaxRows:        4,
		NullProb:       0.25,
	}
}

// CompletenessConfig is the grammar of the paper's completeness
// guarantee: the constraint solver works over integer-coded domains
// (assumption A4 admits only integer/string comparisons), data columns
// are NOT NULL (A2), and constant conjuncts and DISTINCT are outside the
// killed mutation space.
func CompletenessConfig() Config {
	c := DefaultConfig()
	c.AllowFloats = false
	c.AllowBools = false
	c.AllowNullable = false
	c.AllowDistinct = false
	c.AllowConstPred = false
	c.MaxRelations = 3
	c.MaxOccs = 3
	c.MaxSelections = 2
	c.RequireConnected = true
	c.AggVisibility = true
	return c
}

// chance reports true with probability p.
func chance(rng *rand.Rand, p float64) bool { return rng.Float64() < p }

// pick returns a uniformly random element.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }
