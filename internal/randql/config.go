// Package randql is the randomized differential-testing subsystem: a
// seeded, deterministic generator of (schema, query, input data) triples
// covering the paper's query class, plus the harnesses that cross-check
// the execution engine against the independent reference evaluator
// (internal/refeval) and assert the paper's suite-completeness guarantee
// end-to-end (core.Generate → mutation.Evaluate kills every
// non-equivalent mutant).
//
// Determinism rules: every random artifact of a Case is derived from a
// single int64 seed through one math/rand stream consumed in a fixed
// order (schema first, then query, then each dataset in index order).
// Re-running with the same seed — from the tests, the nightly soak, or
// the cmd/randql CLI — reproduces the identical case byte for byte.
package randql

import (
	"math/rand"
)

// Config bounds the random grammar. Two presets matter: DefaultConfig
// exercises the full engine surface (NULLs, floats, booleans, outer and
// natural joins, DISTINCT, constant conjuncts) for the differential
// oracle, while CompletenessConfig restricts to the class the
// constraint-based generator guarantees completeness for (§IV-V:
// integer/string attributes, NOT NULL columns, no constant conjuncts).
type Config struct {
	// Schema shape.
	MaxRelations  int     // relations per schema (≥ 2)
	MaxDataCols   int     // non-key columns per relation
	FKProb        float64 // probability a relation gains an FK to an earlier one
	CompositeProb float64 // probability a relation uses a composite primary key
	AllowFloats   bool    // FLOAT data columns
	AllowBools    bool    // BOOLEAN data columns
	AllowNullable bool    // data columns without NOT NULL

	// Query shape.
	MaxOccs        int     // relation occurrences per query (≥ 1)
	AllowOuter     bool    // LEFT/RIGHT/FULL OUTER JOIN
	AllowNatural   bool    // NATURAL JOIN
	AllowAgg       bool    // GROUP BY + aggregates
	AllowDistinct  bool    // SELECT DISTINCT
	AllowConstPred bool    // constant conjuncts like 1 = 2
	MaxSelections  int     // extra WHERE conjuncts
	AggProb        float64 // probability a query aggregates
	// Extended query classes (subqueries, HAVING, LIKE). A probability of
	// zero disables the class; the grammar-rule coverage counter only
	// demands rules whose knob is enabled.
	SubqProb   float64 // probability of a WHERE subquery conjunct (IN/NOT IN/EXISTS/NOT EXISTS)
	HavingProb float64 // probability an aggregated+grouped query gains a HAVING clause
	LikeProb   float64 // probability a string selection uses [NOT] LIKE instead of a comparison
	// SubqRepeatOK permits a subquery when some relation occurs more than
	// once across the outer FROM and the block. The completeness grammar
	// forbids it (an A3-flavored restriction): join conditions can then
	// imply the block's correlation on every real tuple combination, and
	// the repeated relation lets alternative tuples re-establish a
	// mutated join across Algorithm 2's per-class nullifications — both
	// outside the generator's guarantee.
	SubqRepeatOK bool
	// SubqBareOK permits predicate-less uncorrelated [NOT] IN blocks
	// like "x NOT IN (SELECT sq0.c FROM t1 AS sq0)". The completeness
	// grammar forbids them: NULL NOT IN over such a block is TRUE only
	// when the relation itself is empty, which the solver's slot model
	// cannot represent, so the pad-safety goals that expose outer-join
	// mutants through NULL-padded rows would be unreachable. With at
	// least one inner conjunct the block can be emptied of qualifying
	// rows instead (randql seed 10012 pinned this down).
	SubqBareOK bool
	// HavingJoinOK permits HAVING on multi-occurrence queries. The
	// completeness grammar keeps HAVING single-occurrence: the COUNT
	// group-size ladder is exact only when the group's row count is not
	// inflated by join combinations.
	HavingJoinOK bool
	// RequireConnected rejects queries whose join graph has more than
	// one component. The mutant space (and hence the completeness
	// guarantee) is only defined over connected queries; the
	// differential oracle happily exercises cross products.
	RequireConnected bool
	// AggVisibility forces aggregated multi-occurrence queries to group
	// by at least one attribute of EVERY occurrence. This is the
	// aggregation analogue of the paper's visibility assumptions
	// (A6–A8): a join-type mutant that pads one side with NULLs is only
	// observable through GROUP BY if some grouping attribute exposes
	// the padded side — otherwise the padded rows merge into existing
	// groups and NULL-ignoring aggregates (MIN, SUM, …) hide them, so
	// no dataset can kill the mutant and the completeness guarantee
	// does not extend to such heads. (randql seed 10009 is the
	// counterexample that pinned this down.)
	AggVisibility bool

	// Dataset shape.
	MaxRows  int     // rows per relation
	NullProb float64 // probability of NULL in a nullable column
}

// DefaultConfig is the differential-oracle grammar: everything the
// engine supports, NULL-prone data included.
func DefaultConfig() Config {
	return Config{
		MaxRelations:  4,
		MaxDataCols:   3,
		FKProb:        0.5,
		CompositeProb: 0.25,
		AllowFloats:   true,
		AllowBools:    true,
		AllowNullable: true,
		MaxOccs:       3,
		AllowOuter:    true,
		AllowNatural:  true,
		AllowAgg:      true,
		AllowDistinct: true,

		AllowConstPred: true,
		MaxSelections:  3,
		AggProb:        0.3,
		SubqProb:       0.3,
		HavingProb:     0.35,
		LikeProb:       0.3,
		SubqRepeatOK:   true,
		SubqBareOK:     true,
		HavingJoinOK:   true,
		MaxRows:        4,
		NullProb:       0.25,
	}
}

// CompletenessConfig is the grammar of the paper's completeness
// guarantee: the constraint solver works over integer-coded domains
// (assumption A4 admits only integer/string comparisons), data columns
// are NOT NULL (A2), and constant conjuncts and DISTINCT are outside the
// killed mutation space.
func CompletenessConfig() Config {
	c := DefaultConfig()
	c.AllowFloats = false
	c.AllowBools = false
	c.AllowNullable = false
	c.AllowDistinct = false
	c.AllowConstPred = false
	c.MaxRelations = 3
	c.MaxOccs = 3
	c.MaxSelections = 2
	c.RequireConnected = true
	c.AggVisibility = true
	// Heavier extended-class weights than the oracle grammar: the
	// completeness restrictions (distinct relations for subqueries,
	// single-occurrence HAVING) gate many draws out, and the coverage
	// counter demands every enabled rule per soak.
	c.SubqProb = 0.65
	c.HavingProb = 0.9
	c.LikeProb = 0.3
	c.SubqRepeatOK = false
	c.SubqBareOK = false
	c.HavingJoinOK = false
	return c
}

// chance reports true with probability p.
func chance(rng *rand.Rand, p float64) bool { return rng.Float64() < p }

// pick returns a uniformly random element.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }
