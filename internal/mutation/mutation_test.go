package mutation

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

const testDDL = `
CREATE TABLE instructor (
	id INT PRIMARY KEY,
	name VARCHAR(20) NOT NULL,
	salary INT NOT NULL
);
CREATE TABLE teaches (
	id INT NOT NULL,
	course_id INT NOT NULL,
	PRIMARY KEY (id, course_id)
);
CREATE TABLE course (
	course_id INT PRIMARY KEY,
	title VARCHAR(50) NOT NULL
);
CREATE TABLE chain_a (x INT PRIMARY KEY);
CREATE TABLE chain_b (x INT PRIMARY KEY);
CREATE TABLE chain_c (x INT PRIMARY KEY);
CREATE TABLE chain_d (x INT PRIMARY KEY);
`

const fkDDL = `
CREATE TABLE instructor (
	id INT PRIMARY KEY,
	name VARCHAR(20) NOT NULL,
	salary INT NOT NULL
);
CREATE TABLE teaches (
	id INT NOT NULL,
	course_id INT NOT NULL,
	PRIMARY KEY (id, course_id),
	FOREIGN KEY (id) REFERENCES instructor(id)
);
`

func q(t *testing.T, ddl, sql string) *qtree.Query {
	t.Helper()
	sch, err := sqlparser.ParseSchema(ddl)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	query, err := qtree.BuildSQL(sch, sql)
	if err != nil {
		t.Fatalf("BuildSQL: %v", err)
	}
	return query
}

func TestEnumerateTreesChain(t *testing.T) {
	// Chain A-B, B-C: two unordered shapes ((A*B)*C) and (A*(B*C)).
	query := q(t, testDDL, `SELECT * FROM chain_a a, chain_b b, chain_c c
		WHERE a.x = b.x AND b.x = c.x`)
	// One equivalence class {a.x,b.x,c.x} makes ALL pairings joinable:
	// 3 unordered shapes.
	trees, err := EnumerateTrees(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 3 {
		t.Errorf("trees = %d, want 3 (single class: Example 4)", len(trees))
	}
	cnt, err := CountTrees(query)
	if err != nil || cnt != int64(len(trees)) {
		t.Errorf("CountTrees = %d (%v), want %d", cnt, err, len(trees))
	}
}

func TestEnumerateTreesTwoClasses(t *testing.T) {
	// i-t on id, t-c on course_id: {i,c} not directly joinable -> 2
	// shapes.
	query := q(t, testDDL, `SELECT * FROM instructor i, teaches t, course c
		WHERE i.id = t.id AND t.course_id = c.course_id`)
	trees, err := EnumerateTrees(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Errorf("trees = %d, want 2", len(trees))
	}
}

func TestEnumerateTreesChainFour(t *testing.T) {
	// Chain of 4 with distinct pairwise classes: shapes follow the
	// chain-query formula (ordered 40 / 2^3 = 5 unordered).
	query := q(t, testDDL, `SELECT * FROM chain_a a, chain_b b, chain_c c, chain_d d
		WHERE a.x = b.x AND b.x = c.x AND c.x = d.x`)
	// NOTE: all conjuncts are on attribute x, so they merge into ONE
	// class making every pairing joinable; count is the full unordered
	// tree count over 4 leaves: 4!*Catalan(3)/2^3 = 15.
	trees, err := EnumerateTrees(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 15 {
		t.Errorf("trees = %d, want 15", len(trees))
	}
}

func TestEnumerateDisconnected(t *testing.T) {
	query := q(t, testDDL, "SELECT * FROM chain_a a, chain_b b")
	if _, err := EnumerateTrees(query); err == nil {
		t.Error("cross product should be rejected")
	}
}

func TestCanonCommutativity(t *testing.T) {
	query := q(t, testDDL, "SELECT * FROM chain_a a, chain_b b WHERE a.x = b.x")
	ab := query.Root
	ba := &qtree.Node{Type: sqlparser.InnerJoin, Left: ab.Right, Right: ab.Left}
	if Canon(ab) != Canon(ba) {
		t.Error("inner join canon must be commutative")
	}
	loj := &qtree.Node{Type: sqlparser.LeftOuterJoin, Left: ab.Left, Right: ab.Right}
	rojSwapped := &qtree.Node{Type: sqlparser.RightOuterJoin, Left: ab.Right, Right: ab.Left}
	if Canon(loj) != Canon(rojSwapped) {
		t.Error("L LOJ R must canon-equal R ROJ L")
	}
	roj := &qtree.Node{Type: sqlparser.RightOuterJoin, Left: ab.Left, Right: ab.Right}
	if Canon(loj) == Canon(roj) {
		t.Error("LOJ and ROJ of same children must differ")
	}
	foj := &qtree.Node{Type: sqlparser.FullOuterJoin, Left: ab.Left, Right: ab.Right}
	fojSwapped := &qtree.Node{Type: sqlparser.FullOuterJoin, Left: ab.Right, Right: ab.Left}
	if Canon(foj) != Canon(fojSwapped) {
		t.Error("full outer join canon must be commutative")
	}
}

func TestJoinTypeMutantsSingleJoin(t *testing.T) {
	query := q(t, testDDL, "SELECT * FROM instructor i, teaches t WHERE i.id = t.id")
	ms, err := JoinTypeMutants(query, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// One join node, mutations to LOJ and ROJ (FOJ excluded): 2.
	if len(ms) != 2 {
		t.Errorf("mutants = %d, want 2: %v", len(ms), descs(ms))
	}
	opts := DefaultOptions()
	opts.IncludeFullOuter = true
	ms3, err := JoinTypeMutants(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms3) != 3 {
		t.Errorf("mutants with FOJ = %d, want 3", len(ms3))
	}
}

func TestJoinTypeMutantsDedup(t *testing.T) {
	// 3-relation single class: 3 shapes x 2 nodes x 2 types = 12 raw,
	// all distinct canonically.
	query := q(t, testDDL, `SELECT * FROM chain_a a, chain_b b, chain_c c
		WHERE a.x = b.x AND b.x = c.x`)
	ms, err := JoinTypeMutants(query, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 12 {
		t.Errorf("mutants = %d, want 12: %v", len(ms), descs(ms))
	}
	keys := map[string]bool{}
	for _, m := range ms {
		if keys[m.Key] {
			t.Errorf("duplicate mutant key %s", m.Key)
		}
		keys[m.Key] = true
	}
}

func TestJoinTypeMutantsFixedTreeForOuterQueries(t *testing.T) {
	query := q(t, testDDL, "SELECT * FROM instructor i LEFT OUTER JOIN teaches t ON i.id = t.id")
	ms, err := JoinTypeMutants(query, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// LOJ mutates to INNER and ROJ (FOJ excluded): 2.
	if len(ms) != 2 {
		t.Errorf("mutants = %d: %v", len(ms), descs(ms))
	}
}

func TestComparisonMutants(t *testing.T) {
	query := q(t, testDDL, "SELECT * FROM instructor WHERE salary > 70000")
	ms := ComparisonMutants(query)
	if len(ms) != 5 {
		t.Errorf("mutants = %d, want 5", len(ms))
	}
	// Two selections -> 10.
	query2 := q(t, testDDL, "SELECT * FROM instructor WHERE salary > 70000 AND name = 'x'")
	if got := len(ComparisonMutants(query2)); got != 10 {
		t.Errorf("mutants = %d, want 10", got)
	}
}

func TestAggregateMutants(t *testing.T) {
	query := q(t, testDDL, "SELECT name, SUM(salary) FROM instructor GROUP BY name")
	ms := AggregateMutants(query)
	if len(ms) != 7 {
		t.Errorf("mutants = %d, want 7: %v", len(ms), descs(ms))
	}
	// COUNT(*) is not mutated.
	query2 := q(t, testDDL, "SELECT name, COUNT(*) FROM instructor GROUP BY name")
	if got := len(AggregateMutants(query2)); got != 0 {
		t.Errorf("COUNT(*) mutants = %d, want 0", got)
	}
	// Non-numeric argument: SUM/AVG variants skipped (COUNT/COUNT-D/
	// MIN/MAX remain; original is COUNT so 3).
	query3 := q(t, testDDL, "SELECT COUNT(name) FROM instructor")
	if got := len(AggregateMutants(query3)); got != 3 {
		t.Errorf("non-numeric mutants = %d, want 3: %v", got, descs(AggregateMutants(query3)))
	}
}

func descs(ms []*Mutant) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Desc
	}
	return out
}

func TestEvaluateKillMatrix(t *testing.T) {
	query := q(t, testDDL, "SELECT * FROM instructor i, teaches t WHERE i.id = t.id")
	ms, err := Space(query, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Dataset with a non-teaching instructor kills LOJ; an orphan
	// teaches row kills ROJ.
	ds1 := schema.NewDataset("non-teaching instructor")
	ds1.Insert("instructor", sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewString("a"), sqltypes.NewInt(10)})
	ds1.Insert("teaches", sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewInt(7)})
	ds1.Insert("instructor", sqltypes.Row{sqltypes.NewInt(2), sqltypes.NewString("b"), sqltypes.NewInt(20)})
	ds2 := schema.NewDataset("orphan teaches")
	ds2.Insert("instructor", sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewString("a"), sqltypes.NewInt(10)})
	ds2.Insert("teaches", sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewInt(7)})
	ds2.Insert("teaches", sqltypes.Row{sqltypes.NewInt(3), sqltypes.NewInt(8)})

	rep, err := Evaluate(query, ms, []*schema.Dataset{ds1, ds2})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.KilledCount(); got != 2 {
		t.Errorf("killed = %d, want 2\n%s", got, rep)
	}
	if len(rep.Survivors()) != 0 {
		t.Errorf("survivors = %v", rep.Survivors())
	}
	if !strings.Contains(rep.String(), "killed") {
		t.Errorf("report: %s", rep)
	}
}

func TestEquivalentMutantSurvives(t *testing.T) {
	// Example 2 of the paper: with FK teaches.id -> instructor.id and no
	// selection, instructor ROJ teaches is equivalent to the inner join:
	// no legal dataset can kill it.
	query := q(t, fkDDL, "SELECT * FROM instructor i, teaches t WHERE i.id = t.id")
	ms, err := JoinTypeMutants(query, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var roj *Mutant
	for _, m := range ms {
		if strings.Contains(m.Desc, "ROJ") {
			roj = m
		}
	}
	if roj == nil {
		t.Fatal("no ROJ mutant")
	}
	chk := NewEquivalenceChecker(1)
	equiv, witness, err := chk.Check(query, roj)
	if err != nil {
		t.Fatal(err)
	}
	if !equiv {
		t.Errorf("ROJ mutant should be equivalent under FK; witness:\n%s", witness)
	}
}

func TestNonEquivalentMutantDetected(t *testing.T) {
	// Without the FK, the ROJ mutant is NOT equivalent and randomized
	// testing must find a witness.
	query := q(t, testDDL, "SELECT * FROM instructor i, teaches t WHERE i.id = t.id")
	ms, _ := JoinTypeMutants(query, DefaultOptions())
	chk := NewEquivalenceChecker(1)
	for _, m := range ms {
		equiv, witness, err := chk.Check(query, m)
		if err != nil {
			t.Fatal(err)
		}
		if equiv {
			t.Errorf("mutant %s wrongly deemed equivalent", m.Desc)
		} else if witness == nil {
			t.Errorf("no witness for %s", m.Desc)
		}
	}
}

func TestRandomDatasetValidity(t *testing.T) {
	query := q(t, fkDDL, "SELECT * FROM instructor i, teaches t WHERE i.id = t.id")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		ds, err := RandomDataset(query, rng, 3)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if err := query.Schema.CheckDataset(ds); err != nil {
			t.Fatalf("trial %d: invalid dataset: %v", i, err)
		}
	}
}

func TestSpaceCombines(t *testing.T) {
	query := q(t, fkDDL, `SELECT i.name, SUM(i.salary) FROM instructor i, teaches t
		WHERE i.id = t.id AND i.salary > 100 GROUP BY i.name`)
	ms, err := Space(query, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[Kind]int{}
	for _, m := range ms {
		byKind[m.Kind]++
	}
	if byKind[KindJoinType] != 2 || byKind[KindComparison] != 5 || byKind[KindAggregate] != 7 {
		t.Errorf("space = %v", byKind)
	}
}

func TestEnumerationBound(t *testing.T) {
	sch, _ := sqlparser.ParseSchema(testDDL)
	// Build an 11-occurrence query programmatically.
	var parts []string
	var conds []string
	for i := 0; i < 11; i++ {
		parts = append(parts, fmt.Sprintf("chain_a a%d", i))
		if i > 0 {
			conds = append(conds, fmt.Sprintf("a%d.x = a%d.x", i-1, i))
		}
	}
	query, err := qtree.BuildSQL(sch, "SELECT * FROM "+strings.Join(parts, ", ")+" WHERE "+strings.Join(conds, " AND "))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnumerateTrees(query); err == nil {
		t.Error("expected enumeration bound error")
	}
	if _, err := CountTrees(query); err == nil {
		t.Error("expected count bound error")
	}
}

// DoubleMutants: the paper considers single mutations only but notes
// that "queries with multiple mutations are likely, but not always
// guaranteed, to be killed" (§II). This test documents that behaviour:
// datasets generated for single mutants kill the vast majority of
// double comparison mutants too.
func TestDoubleMutantsMostlyKilled(t *testing.T) {
	query := q(t, testDDL, `SELECT * FROM instructor
		WHERE salary > 70000 AND name <> 'x'`)
	// Build the suite via the single-mutation datasets: boundary
	// datasets for both conjuncts.
	datasets := comparisonDatasets(t, query)

	// Double mutants: both predicates' operators mutated simultaneously.
	var killed, total int
	basePlan := singlePlan(query)
	orig := func(ds *schema.Dataset) string {
		res, err := basePlan.Run(ds)
		if err != nil {
			t.Fatal(err)
		}
		return resultKey(res)
	}
	for _, op1 := range sqltypes.AllCmpOps {
		if op1 == query.Preds[0].Op {
			continue
		}
		for _, op2 := range sqltypes.AllCmpOps {
			if op2 == query.Preds[1].Op {
				continue
			}
			total++
			plan := basePlan.
				WithPredReplaced(0, query.Preds[0].WithOp(op1)).
				WithPredReplaced(1, query.Preds[1].WithOp(op2))
			for _, ds := range datasets {
				res, err := plan.Run(ds)
				if err != nil {
					t.Fatal(err)
				}
				if resultKey(res) != orig(ds) {
					killed++
					break
				}
			}
		}
	}
	if total != 25 {
		t.Fatalf("double mutants = %d", total)
	}
	// "Likely but not guaranteed": expect a clear majority killed.
	if killed < total*3/4 {
		t.Errorf("only %d of %d double mutants killed", killed, total)
	}
	t.Logf("double mutants killed: %d/%d", killed, total)
}

// Join-order invariance: every enumerated tree of an all-inner query
// must produce the same result on any dataset (inner joins are
// associative/commutative, and condition placement derives from the
// equivalence classes). This cross-checks the engine's condition
// placement against the tree enumeration.
func TestJoinOrderInvarianceProperty(t *testing.T) {
	query := q(t, testDDL, `SELECT * FROM instructor i, teaches t, course c
		WHERE i.id = t.id AND t.course_id = c.course_id AND i.salary > 1`)
	trees, err := EnumerateTrees(query)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		ds, err := RandomDataset(query, rng, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.NewPlan(query).WithTree(trees[0]).Run(ds)
		if err != nil {
			t.Fatal(err)
		}
		for ti, tree := range trees[1:] {
			got, err := engine.NewPlan(query).WithTree(tree).Run(ds)
			if err != nil {
				t.Fatal(err)
			}
			if !want.Equal(got) {
				t.Fatalf("trial %d: tree %d (%s) differs from tree 0 (%s) on:\n%s\n%s\nvs\n%s",
					trial, ti+1, tree, trees[0], ds, want, got)
			}
		}
	}
}
