package mutation

import (
	"sort"

	"repro/internal/schema"
)

// MinimizeSuite implements the dataset pruning the paper lists as ongoing
// work (§VII: "minimizing the number of datasets generated, by pruning
// redundant datasets"): given the kill matrix, it selects a subset of
// datasets that kills exactly the same mutants, by greedy set cover
// (largest remaining kill set first, earlier datasets breaking ties so
// the original-query dataset is preferred). The original-query dataset at
// keep[0] is always retained — the tester needs at least one non-empty
// result (Algorithm 1) — and datasets that kill nothing beyond it are
// dropped.
//
// Minimization preserves completeness: the returned suite kills a mutant
// if and only if the full suite did.
func MinimizeSuite(rep *Report) []*schema.Dataset {
	nd := len(rep.Datasets)
	if nd == 0 {
		return nil
	}
	// killSets[d] = mutants killed by dataset d.
	killSets := make([]map[int]bool, nd)
	for d := 0; d < nd; d++ {
		killSets[d] = map[int]bool{}
	}
	uncovered := map[int]bool{}
	for mi := range rep.Mutants {
		for d := 0; d < nd; d++ {
			if rep.Killed[mi][d] {
				killSets[d][mi] = true
				uncovered[mi] = true
			}
		}
	}

	keep := []int{0} // the original-query dataset
	for mi := range killSets[0] {
		delete(uncovered, mi)
	}
	for len(uncovered) > 0 {
		best, bestGain := -1, 0
		for d := 1; d < nd; d++ {
			gain := 0
			for mi := range killSets[d] {
				if uncovered[mi] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = d, gain
			}
		}
		if best < 0 {
			break // unreachable: every uncovered mutant is killed somewhere
		}
		keep = append(keep, best)
		for mi := range killSets[best] {
			delete(uncovered, mi)
		}
	}
	sort.Ints(keep)
	out := make([]*schema.Dataset, 0, len(keep))
	for _, d := range keep {
		out = append(out, rep.Datasets[d])
	}
	return out
}
