package mutation

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
)

// TestKillMatrixEngineMetamorphic pins the ablation guarantee at the
// kill-matrix level: the compiled columnar executor (with family
// sharing and the whole-result memo), the reference interpreter
// (NoCompiledEngine), and a parallel compiled run must produce
// cell-identical kill matrices on the same (space, suite) input, and
// the per-engine counters must reflect which executor actually ran.
func TestKillMatrixEngineMetamorphic(t *testing.T) {
	query := q(t, testDDL, `SELECT i.name, c.title FROM instructor i, teaches t, course c
		WHERE i.id = t.id AND t.course_id = c.course_id AND i.salary > 70000`)
	ms, err := Space(query, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("empty mutant space")
	}

	rng := rand.New(rand.NewSource(11))
	var datasets []*schema.Dataset
	for i := 0; i < 12; i++ {
		ds, err := RandomDataset(query, rng, 3)
		if err != nil {
			t.Fatal(err)
		}
		datasets = append(datasets, ds)
	}

	compiled, err := EvaluateOpts(query, ms, datasets, EvalOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	interp, err := EvaluateOpts(query, ms, datasets, EvalOptions{Parallelism: 1, NoCompiledEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := EvaluateOpts(query, ms, datasets, EvalOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	diff := 0
	for mi := range ms {
		for di := range datasets {
			if compiled.Killed[mi][di] != interp.Killed[mi][di] {
				if diff == 0 {
					t.Errorf("first disagreement: mutant %q dataset %d: compiled=%v interpreted=%v",
						ms[mi].Desc, di, compiled.Killed[mi][di], interp.Killed[mi][di])
				}
				diff++
			}
			if compiled.Killed[mi][di] != parallel.Killed[mi][di] {
				t.Fatalf("parallel compiled run diverged: mutant %q dataset %d", ms[mi].Desc, di)
			}
		}
	}
	if diff > 0 {
		t.Errorf("%d of %d kill-matrix cells disagree between executors", diff, len(ms)*len(datasets))
	}

	// The counters must name the executor that ran.
	if compiled.Exec.CompiledRuns == 0 || compiled.Exec.InterpretedRuns != 0 {
		t.Errorf("compiled run counters = %+v, want compiled-only", compiled.Exec)
	}
	if interp.Exec.InterpretedRuns == 0 || interp.Exec.CompiledRuns != 0 {
		t.Errorf("interpreted run counters = %+v, want interpreter-only", interp.Exec)
	}
	if compiled.Exec.FamilyPrefixHits == 0 {
		t.Errorf("FamilyPrefixHits = 0 across a mutant family, want sharing")
	}
}
