// Package mutation implements the paper's mutation space (§II) and the
// kill-checking harness of §VI-C: enumeration of all equivalent join
// orders of an inner-join query, single join-type mutations of every node
// of every order, comparison-operator mutations of predicate conjuncts,
// aggregation-operator mutations, execution of mutants against datasets
// to build a kill matrix, and randomized equivalence testing of surviving
// mutants (automating the paper's manual verification that unkilled
// mutants are equivalent).
package mutation

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/qtree"
	"repro/internal/sqlparser"
)

// MaxEnumRelations bounds join-order enumeration; beyond this the tree
// count explodes combinatorially (the paper's experiments stop at 7
// relations).
const MaxEnumRelations = 10

// EnumerateTrees returns every cross-product-free binary join tree over
// the query's occurrences, one representative per unordered tree (each
// node is oriented so its left subtree contains the lowest-numbered
// occurrence; inner joins are commutative and outer-join direction is
// covered by mutating to both ⟕ and ⟖). All join types are inner; the
// caller mutates them.
//
// Connectivity is defined by the query's join graph: a partition (L, R)
// of a subset is joinable if an equivalence class spans both sides or a
// non-equi join predicate links them (qtree.JoinGraphEdge). This realizes
// the paper's requirement that the space of join orders is derived from
// the equivalence-class representation (Example 4: A.x=B.x AND B.x=C.x
// admits the (A ⋈ C) pairing).
func EnumerateTrees(q *qtree.Query) ([]*qtree.Node, error) {
	n := len(q.Occs)
	if n > MaxEnumRelations {
		return nil, fmt.Errorf("mutation: %d relations exceed the enumeration bound %d", n, MaxEnumRelations)
	}
	full := uint32(1)<<n - 1
	memo := make(map[uint32][]*qtree.Node)
	occSet := func(mask uint32) map[string]bool {
		s := make(map[string]bool)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s[q.Occs[i].Name] = true
			}
		}
		return s
	}
	sets := make([]map[string]bool, full+1)
	var build func(mask uint32) []*qtree.Node
	build = func(mask uint32) []*qtree.Node {
		if ts, ok := memo[mask]; ok {
			return ts
		}
		if bits.OnesCount32(mask) == 1 {
			i := bits.TrailingZeros32(mask)
			ts := []*qtree.Node{{Occ: q.Occs[i]}}
			memo[mask] = ts
			return ts
		}
		var out []*qtree.Node
		low := uint32(1) << bits.TrailingZeros32(mask)
		// Iterate proper submasks containing the lowest bit (canonical
		// orientation).
		rest := mask &^ low
		for sub := rest; ; sub = (sub - 1) & rest {
			left := low | sub
			right := mask &^ left
			if right != 0 {
				if sets[left] == nil {
					sets[left] = occSet(left)
				}
				if sets[right] == nil {
					sets[right] = occSet(right)
				}
				if q.JoinGraphEdge(sets[left], sets[right]) {
					ls := build(left)
					rs := build(right)
					for _, l := range ls {
						for _, r := range rs {
							out = append(out, &qtree.Node{Type: sqlparser.InnerJoin, Left: l, Right: r})
						}
					}
				}
			}
			if sub == 0 {
				break
			}
		}
		memo[mask] = out
		return out
	}
	trees := build(full)
	if len(trees) == 0 {
		return nil, fmt.Errorf("mutation: query's join graph is disconnected (cross product)")
	}
	return trees, nil
}

// CountTrees returns the number of trees EnumerateTrees would produce,
// computed by dynamic programming without materializing them.
func CountTrees(q *qtree.Query) (int64, error) {
	n := len(q.Occs)
	if n > MaxEnumRelations {
		return 0, fmt.Errorf("mutation: %d relations exceed the enumeration bound %d", n, MaxEnumRelations)
	}
	full := uint32(1)<<n - 1
	counts := make([]int64, full+1)
	sets := make([]map[string]bool, full+1)
	occSet := func(mask uint32) map[string]bool {
		s := make(map[string]bool)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s[q.Occs[i].Name] = true
			}
		}
		return s
	}
	for mask := uint32(1); mask <= full; mask++ {
		if bits.OnesCount32(mask) == 1 {
			counts[mask] = 1
			continue
		}
		low := uint32(1) << bits.TrailingZeros32(mask)
		rest := mask &^ low
		for sub := rest; ; sub = (sub - 1) & rest {
			left := low | sub
			right := mask &^ left
			if right != 0 && counts[left] > 0 && counts[right] > 0 {
				if sets[left] == nil {
					sets[left] = occSet(left)
				}
				if sets[right] == nil {
					sets[right] = occSet(right)
				}
				if q.JoinGraphEdge(sets[left], sets[right]) {
					counts[mask] += counts[left] * counts[right]
				}
			}
			if sub == 0 {
				break
			}
		}
	}
	return counts[full], nil
}

// Canon returns a canonical string for a join tree: inner-join children
// are sorted, and right outer joins are normalized to left outer joins
// with swapped children (L ⟖ R ≡ R ⟕ L); full outer joins sort children.
// Two trees with equal canonical strings are semantically identical
// mutants.
func Canon(n *qtree.Node) string {
	s, _ := canon(n)
	return s
}

func canon(n *qtree.Node) (string, string) {
	if n.IsLeaf() {
		return n.Occ.Name, n.Occ.Name
	}
	l, lmin := canon(n.Left)
	r, rmin := canon(n.Right)
	mn := lmin
	if rmin < mn {
		mn = rmin
	}
	switch n.Type {
	case sqlparser.InnerJoin:
		if r < l {
			l, r = r, l
		}
		return "(" + l + "*" + r + ")", mn
	case sqlparser.LeftOuterJoin:
		return "(" + l + "=>" + r + ")", mn
	case sqlparser.RightOuterJoin:
		return "(" + r + "=>" + l + ")", mn
	default: // full outer
		if r < l {
			l, r = r, l
		}
		return "(" + l + "<=>" + r + ")", mn
	}
}

// sortedNames returns sorted occurrence names of a subtree, for display.
func sortedNames(n *qtree.Node) []string {
	var out []string
	for _, o := range n.Leaves(nil) {
		out = append(out, o.Name)
	}
	sort.Strings(out)
	return out
}
