package mutation

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// Kind classifies mutants.
type Kind string

// Mutant kinds, matching the paper's three mutation classes.
const (
	KindJoinType   Kind = "join-type"
	KindComparison Kind = "comparison"
	KindAggregate  Kind = "aggregate"
	KindSubquery   Kind = "subquery"
	KindHaving     Kind = "having"
	KindLike       Kind = "like"
)

// Mutant is a single syntactic mutation of the query, executable as an
// engine.Plan.
type Mutant struct {
	Key  string // canonical identity, for de-duplication
	Kind Kind
	Desc string
	Plan *engine.Plan

	sig atomic.Pointer[string] // memoized planSignature of Plan
}

// planSig returns planSignature(m.Plan), computed once per mutant. The
// plan never changes after construction, so the signature is memoized:
// kill-matrix evaluation re-signs the whole space on every call (the
// minimization loop evaluates the same mutants dozens of times), and
// canonicalization is the dominant cost of dedup.
func (m *Mutant) planSig() string {
	if p := m.sig.Load(); p != nil {
		return *p
	}
	s := planSignature(m.Plan)
	m.sig.Store(&s)
	return s
}

// Options configure mutant-space generation.
type Options struct {
	// IncludeFullOuter includes mutations to full outer join. The
	// paper's Table I experiments "ignore the mutation to full outer
	// join"; set true to include them.
	IncludeFullOuter bool
	// AllJoinOrders enumerates every equivalent join order for pure
	// inner-join queries (the paper's space). When false — or when the
	// query already contains outer joins, whose order is fixed by the
	// query text — only the written tree is mutated.
	AllJoinOrders bool
}

// DefaultOptions matches the paper's experimental setup.
func DefaultOptions() Options {
	return Options{IncludeFullOuter: false, AllJoinOrders: true}
}

// Space generates the de-duplicated mutant space for a query.
func Space(q *qtree.Query, opts Options) ([]*Mutant, error) {
	var out []*Mutant
	jm, err := JoinTypeMutants(q, opts)
	if err != nil {
		return nil, err
	}
	out = append(out, jm...)
	out = append(out, ComparisonMutants(q)...)
	out = append(out, AggregateMutants(q)...)
	out = append(out, SubqueryMutants(q)...)
	out = append(out, HavingMutants(q)...)
	out = append(out, LikeMutants(q)...)
	return out, nil
}

// JoinTypeMutants generates all single join-type mutations. For pure
// inner-join queries with AllJoinOrders, every cross-product-free join
// order is considered and mutants are de-duplicated by canonical form;
// for queries with outer joins the written tree's nodes are mutated to
// each other join type.
func JoinTypeMutants(q *qtree.Query, opts Options) ([]*Mutant, error) {
	if q.Root == nil || q.Root.IsLeaf() {
		return nil, nil
	}
	basePlan := engine.NewPlan(q)
	seen := map[string]bool{Canon(q.Root): true}
	var out []*Mutant

	addTreeMutants := func(tree *qtree.Node) {
		nodes := tree.Nodes(nil)
		for ni := range nodes {
			var types []sqlparser.JoinType
			for _, jt := range sqlparser.AllJoinTypes {
				if jt == nodes[ni].Type {
					continue
				}
				if jt == sqlparser.FullOuterJoin && !opts.IncludeFullOuter {
					continue
				}
				types = append(types, jt)
			}
			for _, jt := range types {
				mt := tree.Clone()
				mNodes := mt.Nodes(nil)
				mNodes[ni].Type = jt
				key := Canon(mt)
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, &Mutant{
					Key:  key,
					Kind: KindJoinType,
					Desc: fmt.Sprintf("%s at [%s]|[%s] in %s", jt.Symbol(), strings.Join(sortedNames(mNodes[ni].Left), ","), strings.Join(sortedNames(mNodes[ni].Right), ","), mt),
					Plan: basePlan.WithTree(mt),
				})
			}
		}
	}

	if q.AllInner() && opts.AllJoinOrders {
		trees, err := EnumerateTrees(q)
		if err != nil {
			return nil, err
		}
		// Every all-inner tree is equivalent to the original; record
		// each so de-duplication can skip inner-only mutants.
		for _, t := range trees {
			seen[Canon(t)] = true
		}
		for _, t := range trees {
			addTreeMutants(t)
		}
	} else {
		addTreeMutants(q.Root)
	}
	return out, nil
}

// ComparisonMutants generates the comparison-operator mutation space:
// each predicate conjunct's operator replaced by each of the other five
// operators (§II). Equi-join conjuncts represented by equivalence classes
// are join conditions, covered by the join-type space, and are not
// comparison-mutated.
func ComparisonMutants(q *qtree.Query) []*Mutant {
	basePlan := engine.NewPlan(q)
	var out []*Mutant
	for i, p := range q.Preds {
		if p.Like != nil {
			// Pattern predicates carry no comparison operator; their
			// space is LikeMutants.
			continue
		}
		for _, op := range sqltypes.AllCmpOps {
			if op == p.Op {
				continue
			}
			mp := p.WithOp(op)
			out = append(out, &Mutant{
				Key:  fmt.Sprintf("cmp:%d:%s", i, op),
				Kind: KindComparison,
				Desc: fmt.Sprintf("%s -> %s", p, mp),
				Plan: basePlan.WithPredReplaced(i, mp),
			})
		}
	}
	return out
}

// aggVariants is the paper's eight-operator aggregation space: MAX, MIN,
// SUM, AVG, COUNT, SUM(DISTINCT), AVG(DISTINCT), COUNT(DISTINCT).
var aggVariants = []struct {
	f sqlparser.AggFunc
	d bool
}{
	{sqlparser.AggMax, false},
	{sqlparser.AggMin, false},
	{sqlparser.AggSum, false},
	{sqlparser.AggAvg, false},
	{sqlparser.AggCount, false},
	{sqlparser.AggSum, true},
	{sqlparser.AggAvg, true},
	{sqlparser.AggCount, true},
}

// AggregateMutants generates the aggregation-operator mutation space:
// each aggregate call replaced by each of the other seven operators.
// COUNT(*) calls are not mutated (there is no aggregated attribute to
// carry over); numeric-only operators are skipped for non-numeric
// arguments.
func AggregateMutants(q *qtree.Query) []*Mutant {
	if q.Agg == nil {
		return nil
	}
	basePlan := engine.NewPlan(q)
	var out []*Mutant
	for i, call := range q.Agg.Calls {
		if call.Star {
			continue
		}
		numeric := q.AttrType(call.Arg).Numeric()
		for _, v := range aggVariants {
			if v.f == call.Func && v.d == call.Distinct {
				continue
			}
			if !numeric {
				switch v.f {
				case sqlparser.AggSum, sqlparser.AggAvg:
					continue
				}
			}
			mc := call.Mutate(v.f, v.d)
			out = append(out, &Mutant{
				Key:  fmt.Sprintf("agg:%d:%s", i, mc),
				Kind: KindAggregate,
				Desc: fmt.Sprintf("%s -> %s", call, mc),
				Plan: basePlan.WithAggReplaced(i, mc),
			})
		}
	}
	return out
}

// allSubKinds is the subquery-connective mutation space.
var allSubKinds = []qtree.SubKind{qtree.SubIn, qtree.SubNotIn, qtree.SubExists, qtree.SubNotExists}

// SubqueryMutants generates the subquery-connective mutation space: each
// retained WHERE subquery's connective replaced by each of the other
// three (IN, NOT IN, EXISTS, NOT EXISTS). The IN forms need an outer
// comparison expression, so an EXISTS block without one only mutates to
// its negation.
func SubqueryMutants(q *qtree.Query) []*Mutant {
	if len(q.Subs) == 0 {
		return nil
	}
	basePlan := engine.NewPlan(q)
	var out []*Mutant
	for i, s := range q.Subs {
		for _, k := range allSubKinds {
			if k == s.Kind {
				continue
			}
			if k.HasOuter() && s.Outer == nil {
				continue
			}
			ms := s.WithKind(k)
			out = append(out, &Mutant{
				Key:  fmt.Sprintf("sub:%d:%s", i, k),
				Kind: KindSubquery,
				Desc: fmt.Sprintf("%s -> %s", s.Kind, k),
				Plan: basePlan.WithSubReplaced(i, ms),
			})
		}
	}
	return out
}

// HavingMutants generates the HAVING-comparison mutation space: each
// HAVING conjunct's operator replaced by each of the other five.
func HavingMutants(q *qtree.Query) []*Mutant {
	if q.Agg == nil || len(q.Agg.Having) == 0 {
		return nil
	}
	basePlan := engine.NewPlan(q)
	var out []*Mutant
	for i, h := range q.Agg.Having {
		for _, op := range sqltypes.AllCmpOps {
			if op == h.Op {
				continue
			}
			mh := h.WithOp(op)
			out = append(out, &Mutant{
				Key:  fmt.Sprintf("hav:%d:%s", i, op),
				Kind: KindHaving,
				Desc: fmt.Sprintf("%s -> %s", h, mh),
				Plan: basePlan.WithHavingReplaced(i, mh),
			})
		}
	}
	return out
}

// likeVariant is one mutation of a pattern predicate: negation flipped
// or the pattern altered at one wildcard.
type likeVariant struct {
	tag string
	not bool
	pat string
}

// likeVariants enumerates the mutations of one LIKE predicate: the
// negation flip, each wildcard flipped between % and _, and each
// wildcard deleted.
func likeVariants(not bool, pat string) []likeVariant {
	out := []likeVariant{{tag: "neg", not: !not, pat: pat}}
	for j := 0; j < len(pat); j++ {
		switch pat[j] {
		case '%':
			out = append(out, likeVariant{tag: fmt.Sprintf("flip%d", j), not: not, pat: pat[:j] + "_" + pat[j+1:]})
			out = append(out, likeVariant{tag: fmt.Sprintf("del%d", j), not: not, pat: pat[:j] + pat[j+1:]})
		case '_':
			out = append(out, likeVariant{tag: fmt.Sprintf("flip%d", j), not: not, pat: pat[:j] + "%" + pat[j+1:]})
			out = append(out, likeVariant{tag: fmt.Sprintf("del%d", j), not: not, pat: pat[:j] + pat[j+1:]})
		}
	}
	return out
}

// LikeMutants generates the pattern-predicate mutation space: for each
// LIKE / NOT LIKE conjunct — in the outer WHERE or inside a retained
// subquery block — the negation flipped, each wildcard flipped between
// % and _, and each wildcard deleted.
func LikeMutants(q *qtree.Query) []*Mutant {
	basePlan := engine.NewPlan(q)
	var out []*Mutant
	for i, p := range q.Preds {
		if p.Like == nil {
			continue
		}
		for _, v := range likeVariants(p.Like.Not, p.Like.Pattern) {
			mp := p.WithLike(v.not, v.pat)
			out = append(out, &Mutant{
				Key:  fmt.Sprintf("like:%d:%s", i, v.tag),
				Kind: KindLike,
				Desc: fmt.Sprintf("%s -> %s", p, mp),
				Plan: basePlan.WithPredReplaced(i, mp),
			})
		}
	}
	for si, s := range q.Subs {
		for j, p := range s.Preds {
			if p.Like == nil {
				continue
			}
			for _, v := range likeVariants(p.Like.Not, p.Like.Pattern) {
				mp := p.WithLike(v.not, v.pat)
				ms := s.WithKind(s.Kind) // shallow copy
				ms.Preds = make([]*qtree.Pred, len(s.Preds))
				copy(ms.Preds, s.Preds)
				ms.Preds[j] = mp
				out = append(out, &Mutant{
					Key:  fmt.Sprintf("like:s%d.%d:%s", si, j, v.tag),
					Kind: KindLike,
					Desc: fmt.Sprintf("%s -> %s (in %s block)", p, mp, s.Kind),
					Plan: basePlan.WithSubReplaced(si, ms),
				})
			}
		}
	}
	return out
}
