package mutation

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/schema"
	"repro/internal/sqltypes"
)

// Report is the kill matrix of a mutant space against a test suite: which
// datasets kill which mutants.
type Report struct {
	Query    *qtree.Query
	Mutants  []*Mutant
	Datasets []*schema.Dataset
	// Killed[m][d] is true when dataset d kills mutant m.
	Killed [][]bool
}

// Evaluate runs the original query and every mutant on every dataset.
// A mutant is killed by a dataset when the two results differ as
// multisets (the paper's definition).
func Evaluate(q *qtree.Query, mutants []*Mutant, datasets []*schema.Dataset) (*Report, error) {
	rep := &Report{Query: q, Mutants: mutants, Datasets: datasets, Killed: make([][]bool, len(mutants))}
	for i := range rep.Killed {
		rep.Killed[i] = make([]bool, len(datasets))
	}
	orig := engine.NewPlan(q)
	for di, ds := range datasets {
		want, err := orig.Run(ds)
		if err != nil {
			return nil, fmt.Errorf("mutation: original query on dataset %d (%s): %w", di, ds.Purpose, err)
		}
		for mi, m := range mutants {
			got, err := m.Plan.Run(ds)
			if err != nil {
				return nil, fmt.Errorf("mutation: mutant %s on dataset %d: %w", m.Desc, di, err)
			}
			rep.Killed[mi][di] = !want.Equal(got)
		}
	}
	return rep, nil
}

// KilledCount returns how many mutants are killed by at least one
// dataset.
func (r *Report) KilledCount() int {
	n := 0
	for mi := range r.Mutants {
		if r.MutantKilled(mi) {
			n++
		}
	}
	return n
}

// MutantKilled reports whether mutant mi is killed by any dataset.
func (r *Report) MutantKilled(mi int) bool {
	for _, k := range r.Killed[mi] {
		if k {
			return true
		}
	}
	return false
}

// Survivors returns the indices of mutants killed by no dataset.
func (r *Report) Survivors() []int {
	var out []int
	for mi := range r.Mutants {
		if !r.MutantKilled(mi) {
			out = append(out, mi)
		}
	}
	return out
}

// KillsByKind tallies killed/total per mutant kind.
func (r *Report) KillsByKind() map[Kind][2]int {
	out := map[Kind][2]int{}
	for mi, m := range r.Mutants {
		c := out[m.Kind]
		c[1]++
		if r.MutantKilled(mi) {
			c[0]++
		}
		out[m.Kind] = c
	}
	return out
}

// String renders a summary table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mutants: %d, datasets: %d, killed: %d\n", len(r.Mutants), len(r.Datasets), r.KilledCount())
	kinds := r.KillsByKind()
	var ks []string
	for k := range kinds {
		ks = append(ks, string(k))
	}
	sort.Strings(ks)
	for _, k := range ks {
		c := kinds[Kind(k)]
		fmt.Fprintf(&sb, "  %-12s %d/%d killed\n", k, c[0], c[1])
	}
	return sb.String()
}

// EquivalenceChecker tests surviving mutants for equivalence by running
// original and mutant on many random schema-valid databases. It automates
// the paper's manual verification ("we manually verified that every
// mutation that was not killed was in fact an equivalent mutation").
type EquivalenceChecker struct {
	Trials int
	// MaxRows bounds random table sizes (small tables make collisions —
	// and therefore interesting join behaviour — likely).
	MaxRows int
	Seed    int64
}

// NewEquivalenceChecker returns a checker with sensible defaults.
func NewEquivalenceChecker(seed int64) *EquivalenceChecker {
	return &EquivalenceChecker{Trials: 120, MaxRows: 3, Seed: seed}
}

// Check runs the randomized test. It returns (true, nil) when no
// difference was found in any trial (the mutant is probably equivalent),
// or (false, witness) with a dataset on which the results differ.
func (c *EquivalenceChecker) Check(q *qtree.Query, m *Mutant) (bool, *schema.Dataset, error) {
	rng := rand.New(rand.NewSource(c.Seed))
	orig := engine.NewPlan(q)
	for trial := 0; trial < c.Trials; trial++ {
		ds, err := RandomDataset(q, rng, c.MaxRows)
		if err != nil {
			return false, nil, err
		}
		want, err := orig.Run(ds)
		if err != nil {
			return false, nil, err
		}
		got, err := m.Plan.Run(ds)
		if err != nil {
			return false, nil, err
		}
		if !want.Equal(got) {
			ds.Purpose = fmt.Sprintf("witness distinguishing mutant %q (trial %d)", m.Desc, trial)
			return false, ds, nil
		}
	}
	return true, nil, nil
}

// RandomDataset generates a random dataset that satisfies the schema's
// primary- and foreign-key constraints, covering the relations used by
// the query plus everything transitively referenced. Values are drawn
// from a small pool so joins and selections have a realistic chance of
// matching.
func RandomDataset(q *qtree.Query, rng *rand.Rand, maxRows int) (*schema.Dataset, error) {
	rels, err := relationsClosure(q)
	if err != nil {
		return nil, err
	}
	// Collect the constants appearing in query predicates per kind, so
	// selections are sometimes satisfied.
	intPool := []int64{0, 1, 2}
	strPool := []string{"u", "v", "w"}
	for _, p := range q.Preds {
		for _, s := range []*qtree.Scalar{p.L, p.R} {
			collectConsts(s, &intPool, &strPool)
		}
	}

	ds := schema.NewDataset("random")
	for _, rel := range rels { // topological: referenced relations first
		nRows := rng.Intn(maxRows + 1)
		// Relations appearing in the query should usually be non-empty.
		if nRows == 0 && rng.Intn(2) == 0 {
			nRows = 1
		}
		seenPK := map[string]bool{}
		for i := 0; i < nRows; i++ {
			row := make(sqltypes.Row, rel.Arity())
			ok := true
			for ci, a := range rel.Attrs {
				row[ci] = randomValue(a.Type, rng, intPool, strPool)
			}
			// Satisfy FKs by copying from a random referenced row.
			for _, fk := range rel.ForeignKeys {
				refRows := ds.Rows(fk.RefTable)
				if len(refRows) == 0 {
					ok = false
					break
				}
				ref := refRows[rng.Intn(len(refRows))]
				refRel := q.Schema.Relation(fk.RefTable)
				for k, col := range fk.Columns {
					row[rel.AttrPos(col)] = ref[refRel.AttrPos(fk.RefColumns[k])]
				}
			}
			if !ok {
				continue
			}
			if len(rel.PrimaryKey) > 0 {
				var key sqltypes.Row
				for _, c := range rel.PrimaryKey {
					key = append(key, row[rel.AttrPos(c)])
				}
				if seenPK[key.Key()] {
					continue
				}
				seenPK[key.Key()] = true
			}
			ds.Insert(rel.Name, row)
		}
	}
	if err := q.Schema.CheckDataset(ds); err != nil {
		return nil, fmt.Errorf("mutation: random dataset invalid: %w", err)
	}
	return ds, nil
}

func collectConsts(s *qtree.Scalar, intPool *[]int64, strPool *[]string) {
	switch s.Kind {
	case qtree.SConst:
		switch s.Const.Kind() {
		case sqltypes.KindInt:
			v := s.Const.Int()
			*intPool = append(*intPool, v-1, v, v+1)
		case sqltypes.KindString:
			*strPool = append(*strPool, s.Const.Str())
		}
	case qtree.SArith:
		collectConsts(s.L, intPool, strPool)
		collectConsts(s.R, intPool, strPool)
	}
}

func randomValue(k sqltypes.Kind, rng *rand.Rand, intPool []int64, strPool []string) sqltypes.Value {
	switch k {
	case sqltypes.KindString:
		return sqltypes.NewString(strPool[rng.Intn(len(strPool))])
	case sqltypes.KindFloat:
		return sqltypes.NewFloat(float64(intPool[rng.Intn(len(intPool))]))
	case sqltypes.KindBool:
		return sqltypes.NewBool(rng.Intn(2) == 0)
	default:
		return sqltypes.NewInt(intPool[rng.Intn(len(intPool))])
	}
}

// relationsClosure returns the base relations of the query plus all
// transitively referenced relations, topologically ordered so referenced
// relations come first. FK cycles are rejected.
func relationsClosure(q *qtree.Query) ([]*schema.Relation, error) {
	var order []*schema.Relation
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("mutation: foreign-key cycle through %s", name)
		case 2:
			return nil
		}
		state[name] = 1
		rel := q.Schema.Relation(name)
		if rel == nil {
			return fmt.Errorf("mutation: unknown relation %s", name)
		}
		for _, fk := range rel.ForeignKeys {
			if err := visit(fk.RefTable); err != nil {
				return err
			}
		}
		state[name] = 2
		order = append(order, rel)
		return nil
	}
	for _, occ := range q.Occs {
		if err := visit(occ.Rel.Name); err != nil {
			return nil, err
		}
	}
	return order, nil
}
