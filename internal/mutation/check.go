package mutation

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/schema"
	"repro/internal/sqltypes"
)

// Report is the kill matrix of a mutant space against a test suite: which
// datasets kill which mutants.
type Report struct {
	Query    *qtree.Query
	Mutants  []*Mutant
	Datasets []*schema.Dataset
	// Killed[m][d] is true when dataset d kills mutant m.
	Killed [][]bool
	// Exec counts what the engine did during evaluation (compiled vs
	// interpreted runs, hash joins, family-prefix cache hits, ...).
	Exec engine.ExecCounts
}

// EvalOptions configure kill-matrix evaluation.
type EvalOptions struct {
	// Parallelism is the number of worker goroutines evaluating
	// (mutant plan, dataset) cells. <= 0 selects runtime.GOMAXPROCS(0);
	// 1 evaluates sequentially. The Report is identical for every
	// value.
	Parallelism int
	// NoCompiledEngine ablates the compiled columnar executor and the
	// family prefix cache: every cell runs on the row-at-a-time
	// reference interpreter. Kill matrices are cell-identical either
	// way; the flag exists for differential testing and benchmarks.
	NoCompiledEngine bool
}

// EvalError reports a query-execution failure during kill-matrix
// evaluation, naming both the mutant (empty for the original query) and
// the dataset it ran on.
type EvalError struct {
	Mutant  string // mutant description; "" when the original query failed
	Dataset int    // dataset index within the evaluated suite
	Purpose string // dataset purpose label
	Err     error
}

func (e *EvalError) Error() string {
	who := "original query"
	if e.Mutant != "" {
		who = "mutant " + e.Mutant
	}
	return fmt.Sprintf("mutation: %s on dataset %d (%s): %v", who, e.Dataset, e.Purpose, e.Err)
}

func (e *EvalError) Unwrap() error { return e.Err }

// Evaluate runs the original query and every mutant on every dataset.
// A mutant is killed by a dataset when the two results differ as
// multisets (the paper's definition). It evaluates with default options
// (all CPUs); see EvaluateOpts for explicit control.
func Evaluate(q *qtree.Query, mutants []*Mutant, datasets []*schema.Dataset) (*Report, error) {
	return EvaluateOpts(q, mutants, datasets, EvalOptions{})
}

// EvaluateContext is EvaluateOpts with cooperative cancellation: the
// context is checked before every (plan, dataset) cell, in the sequential
// loop and in every worker, so a canceled evaluation returns promptly
// (within one cell execution) with the context's error and no report.
// Workers are always joined before returning; no goroutines outlive the
// call.
func EvaluateContext(ctx context.Context, q *qtree.Query, mutants []*Mutant, datasets []*schema.Dataset, opts EvalOptions) (*Report, error) {
	return evaluate(ctx, q, mutants, datasets, opts)
}

// planSignature returns a canonical execution identity for a plan: two
// plans with equal signatures produce multiset-equal results on every
// dataset (Canon folds commutative inner-join orders and right-to-left
// outer-join symmetry; projection and aggregation depend only on the
// query, the predicate list and the aggregate list).
func planSignature(p *engine.Plan) string {
	var sb strings.Builder
	if p.Tree != nil {
		sb.WriteString(Canon(p.Tree))
	}
	for _, pr := range p.Preds {
		sb.WriteByte('|')
		sb.WriteString(pr.String())
	}
	for _, a := range p.Aggs {
		sb.WriteByte('|')
		sb.WriteString(a.String())
	}
	for _, s := range p.Subs {
		sb.WriteByte('|')
		sb.WriteString(s.String())
	}
	for _, h := range p.Having {
		sb.WriteByte('|')
		sb.WriteString(h.String())
	}
	return sb.String()
}

// EvaluateOpts is Evaluate with explicit options. The evaluation is a
// parallel pipeline over (unique plan, dataset) cells:
//
//   - the original query's result is computed once per dataset (lazily,
//     guarded by sync.Once) and shared by every cell of that dataset —
//     its multiset is memoized inside engine.Result, so each comparison
//     is a map walk, not a rebuild;
//   - mutant plans are deduplicated by plan signature before any cell
//     runs: distinct join orders frequently compile to the same
//     canonical tree (e.g. the written tree's mutant re-derived from a
//     reordered equivalent), and each unique plan executes once per
//     dataset, with the kill bit broadcast to every mutant sharing the
//     signature.
//
// Kill bits are pure functions of (plan, dataset), so the Report is
// deterministic regardless of worker count or scheduling.
func EvaluateOpts(q *qtree.Query, mutants []*Mutant, datasets []*schema.Dataset, opts EvalOptions) (*Report, error) {
	return evaluate(context.Background(), q, mutants, datasets, opts)
}

func evaluate(ctx context.Context, q *qtree.Query, mutants []*Mutant, datasets []*schema.Dataset, opts EvalOptions) (*Report, error) {
	rep := &Report{Query: q, Mutants: mutants, Datasets: datasets, Killed: make([][]bool, len(mutants))}
	for i := range rep.Killed {
		rep.Killed[i] = make([]bool, len(datasets))
	}
	if len(mutants) == 0 || len(datasets) == 0 {
		return rep, nil
	}

	// Deduplicate mutant plans by execution signature.
	planOf := make([]int, len(mutants)) // mutant index -> unique plan index
	var plans []*engine.Plan
	var planDesc []string // representative mutant description per plan
	sigIdx := map[string]int{}
	for mi, m := range mutants {
		sig := m.planSig()
		ui, ok := sigIdx[sig]
		if !ok {
			ui = len(plans)
			sigIdx[sig] = ui
			plans = append(plans, m.Plan)
			planDesc = append(planDesc, m.Desc)
		}
		planOf[mi] = ui
	}

	// Engine strategy: one stats block for the whole evaluation and, on
	// the compiled path, one shared subtree cache per worker, reset
	// between datasets. The plans of a mutant family differ in a single
	// component, so their compiled trees overlap heavily; the cache
	// evaluates each distinct subtree once per dataset and every plan
	// sharing it — including the original query — reuses the batch.
	// Reusing one cache per worker (instead of one per dataset) keeps
	// the map storage warm: after the worker's largest family the cache
	// allocates no new buckets.
	stats := &engine.ExecStats{}
	newCache := func() *engine.SharedCache {
		if opts.NoCompiledEngine {
			return nil
		}
		return engine.NewSharedCacheSized(len(plans))
	}
	runOpts := func(sc *engine.SharedCache) engine.RunOptions {
		return engine.RunOptions{Interpret: opts.NoCompiledEngine, Stats: stats, Cache: sc}
	}
	defer func() { rep.Exec = stats.Counts() }()

	// Original-query results, one per dataset, computed lazily by
	// whichever cell needs them first (hoisted out of every retry/mutant
	// path: exactly one run per dataset).
	origPlan := engine.NewPlan(q)
	wants := make([]*engine.Result, len(datasets))
	wantErrs := make([]error, len(datasets))
	wantOnce := make([]sync.Once, len(datasets))
	getWant := func(di int, sc *engine.SharedCache) (*engine.Result, error) {
		wantOnce[di].Do(func() {
			res, err := origPlan.RunOpts(datasets[di], runOpts(sc))
			if err != nil {
				wantErrs[di] = &EvalError{Dataset: di, Purpose: datasets[di].Purpose, Err: err}
				return
			}
			wants[di] = res
		})
		return wants[di], wantErrs[di]
	}

	// Evaluate one (unique plan, dataset) cell.
	killedU := make([][]bool, len(plans))
	for ui := range killedU {
		killedU[ui] = make([]bool, len(datasets))
	}
	runCell := func(di, ui int, sc *engine.SharedCache) error {
		select {
		case <-ctx.Done():
			// Done is a closed-channel poll, much cheaper per cell than
			// ctx.Err()'s mutex; Err() is only consulted on cancellation.
			return fmt.Errorf("mutation: evaluation canceled: %w", ctx.Err())
		default:
		}
		want, err := getWant(di, sc)
		if err != nil {
			return err
		}
		got, err := plans[ui].RunOpts(datasets[di], runOpts(sc))
		if err != nil {
			return &EvalError{Mutant: planDesc[ui], Dataset: di, Purpose: datasets[di].Purpose, Err: err}
		}
		killedU[ui][di] = !want.Equal(got)
		return nil
	}
	// Every plan of one dataset runs in one unit: the worker's
	// SharedCache is touched by exactly one goroutine (its correctness
	// contract), reset at each dataset boundary, and the family's
	// sharing is maximal within the unit.
	runDataset := func(di int, sc *engine.SharedCache) error {
		if sc != nil {
			sc.Reset()
		}
		for ui := range plans {
			if err := runCell(di, ui, sc); err != nil {
				return err
			}
		}
		return nil
	}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(datasets) {
		workers = len(datasets)
	}
	if workers <= 1 {
		sc := newCache()
		for di := range datasets {
			if err := runDataset(di, sc); err != nil {
				return nil, err
			}
		}
	} else {
		dsErrs := make([]error, len(datasets))
		var next int64 = -1
		var failed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := newCache()
				for {
					di := int(atomic.AddInt64(&next, 1))
					if di >= len(datasets) || failed.Load() {
						return
					}
					if err := runDataset(di, sc); err != nil {
						dsErrs[di] = err
						failed.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
		for _, err := range dsErrs {
			if err != nil {
				return nil, err
			}
		}
	}

	// Broadcast unique-plan kill bits to every mutant sharing the plan.
	for mi := range mutants {
		copy(rep.Killed[mi], killedU[planOf[mi]])
	}
	return rep, nil
}

// KilledCount returns how many mutants are killed by at least one
// dataset.
func (r *Report) KilledCount() int {
	n := 0
	for mi := range r.Mutants {
		if r.MutantKilled(mi) {
			n++
		}
	}
	return n
}

// MutantKilled reports whether mutant mi is killed by any dataset.
func (r *Report) MutantKilled(mi int) bool {
	for _, k := range r.Killed[mi] {
		if k {
			return true
		}
	}
	return false
}

// Survivors returns the indices of mutants killed by no dataset.
func (r *Report) Survivors() []int {
	var out []int
	for mi := range r.Mutants {
		if !r.MutantKilled(mi) {
			out = append(out, mi)
		}
	}
	return out
}

// KillsByKind tallies killed/total per mutant kind.
func (r *Report) KillsByKind() map[Kind][2]int {
	out := map[Kind][2]int{}
	for mi, m := range r.Mutants {
		c := out[m.Kind]
		c[1]++
		if r.MutantKilled(mi) {
			c[0]++
		}
		out[m.Kind] = c
	}
	return out
}

// String renders a summary table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mutants: %d, datasets: %d, killed: %d\n", len(r.Mutants), len(r.Datasets), r.KilledCount())
	kinds := r.KillsByKind()
	var ks []string
	for k := range kinds {
		ks = append(ks, string(k))
	}
	sort.Strings(ks)
	for _, k := range ks {
		c := kinds[Kind(k)]
		fmt.Fprintf(&sb, "  %-12s %d/%d killed\n", k, c[0], c[1])
	}
	return sb.String()
}

// EquivalenceChecker tests surviving mutants for equivalence by running
// original and mutant on many random schema-valid databases. It automates
// the paper's manual verification ("we manually verified that every
// mutation that was not killed was in fact an equivalent mutation").
type EquivalenceChecker struct {
	Trials int
	// MaxRows bounds random table sizes (small tables make collisions —
	// and therefore interesting join behaviour — likely).
	MaxRows int
	Seed    int64
}

// NewEquivalenceChecker returns a checker with sensible defaults.
func NewEquivalenceChecker(seed int64) *EquivalenceChecker {
	return &EquivalenceChecker{Trials: 120, MaxRows: 3, Seed: seed}
}

// Check runs the randomized test. It returns (true, nil) when no
// difference was found in any trial (the mutant is probably equivalent),
// or (false, witness) with a dataset on which the results differ.
func (c *EquivalenceChecker) Check(q *qtree.Query, m *Mutant) (bool, *schema.Dataset, error) {
	rng := rand.New(rand.NewSource(c.Seed))
	orig := engine.NewPlan(q)
	for trial := 0; trial < c.Trials; trial++ {
		ds, err := RandomDataset(q, rng, c.MaxRows)
		if err != nil {
			return false, nil, err
		}
		want, err := orig.Run(ds)
		if err != nil {
			return false, nil, err
		}
		got, err := m.Plan.Run(ds)
		if err != nil {
			return false, nil, err
		}
		if !want.Equal(got) {
			ds.Purpose = fmt.Sprintf("witness distinguishing mutant %q (trial %d)", m.Desc, trial)
			return false, ds, nil
		}
	}
	return true, nil, nil
}

// RandomDataset generates a random dataset that satisfies the schema's
// primary- and foreign-key constraints, covering the relations used by
// the query plus everything transitively referenced. Values are drawn
// from a small pool so joins and selections have a realistic chance of
// matching.
func RandomDataset(q *qtree.Query, rng *rand.Rand, maxRows int) (*schema.Dataset, error) {
	rels, err := relationsClosure(q)
	if err != nil {
		return nil, err
	}
	// Collect the constants appearing in query predicates per kind, so
	// selections are sometimes satisfied.
	intPool := []int64{0, 1, 2}
	strPool := []string{"u", "v", "w"}
	collectPred := func(p *qtree.Pred) {
		if p.Like != nil {
			// Seed the string pool with a matching and a near-miss
			// witness so pattern predicates are sometimes satisfied.
			strPool = append(strPool, likeWitness(p.Like.Pattern), likeWitness(p.Like.Pattern)+"x")
			collectConsts(p.L, &intPool, &strPool)
			return
		}
		for _, s := range []*qtree.Scalar{p.L, p.R} {
			collectConsts(s, &intPool, &strPool)
		}
	}
	for _, p := range q.Preds {
		collectPred(p)
	}
	for _, sub := range q.Subs {
		for _, p := range sub.Preds {
			collectPred(p)
		}
		if sub.Outer != nil {
			collectConsts(sub.Outer, &intPool, &strPool)
		}
	}
	if q.Agg != nil {
		for _, h := range q.Agg.Having {
			switch h.Rhs.Kind() {
			case sqltypes.KindInt:
				v := h.Rhs.Int()
				intPool = append(intPool, v-1, v, v+1)
			case sqltypes.KindString:
				strPool = append(strPool, h.Rhs.Str())
			}
		}
	}

	ds := schema.NewDataset("random")
	for _, rel := range rels { // topological: referenced relations first
		nRows := rng.Intn(maxRows + 1)
		// Relations appearing in the query should usually be non-empty.
		if nRows == 0 && rng.Intn(2) == 0 {
			nRows = 1
		}
		seenPK := map[string]bool{}
		for i := 0; i < nRows; i++ {
			row := make(sqltypes.Row, rel.Arity())
			ok := true
			for ci, a := range rel.Attrs {
				row[ci] = randomValue(a.Type, rng, intPool, strPool)
			}
			// Satisfy FKs by copying from a random referenced row.
			for _, fk := range rel.ForeignKeys {
				refRows := ds.Rows(fk.RefTable)
				if len(refRows) == 0 {
					ok = false
					break
				}
				ref := refRows[rng.Intn(len(refRows))]
				refRel := q.Schema.Relation(fk.RefTable)
				for k, col := range fk.Columns {
					row[rel.AttrPos(col)] = ref[refRel.AttrPos(fk.RefColumns[k])]
				}
			}
			if !ok {
				continue
			}
			if len(rel.PrimaryKey) > 0 {
				var key sqltypes.Row
				for _, c := range rel.PrimaryKey {
					key = append(key, row[rel.AttrPos(c)])
				}
				if seenPK[key.Key()] {
					continue
				}
				seenPK[key.Key()] = true
			}
			ds.Insert(rel.Name, row)
		}
	}
	if err := q.Schema.CheckDataset(ds); err != nil {
		return nil, fmt.Errorf("mutation: random dataset invalid: %w", err)
	}
	return ds, nil
}

// likeWitness builds a string matching the pattern: wildcards collapse
// to the shortest match (% to the empty string, _ to one byte).
func likeWitness(pat string) string {
	var sb strings.Builder
	for i := 0; i < len(pat); i++ {
		switch pat[i] {
		case '%':
		case '_':
			sb.WriteByte('a')
		default:
			sb.WriteByte(pat[i])
		}
	}
	return sb.String()
}

func collectConsts(s *qtree.Scalar, intPool *[]int64, strPool *[]string) {
	switch s.Kind {
	case qtree.SConst:
		switch s.Const.Kind() {
		case sqltypes.KindInt:
			v := s.Const.Int()
			*intPool = append(*intPool, v-1, v, v+1)
		case sqltypes.KindString:
			*strPool = append(*strPool, s.Const.Str())
		}
	case qtree.SArith:
		collectConsts(s.L, intPool, strPool)
		collectConsts(s.R, intPool, strPool)
	}
}

func randomValue(k sqltypes.Kind, rng *rand.Rand, intPool []int64, strPool []string) sqltypes.Value {
	switch k {
	case sqltypes.KindString:
		return sqltypes.NewString(strPool[rng.Intn(len(strPool))])
	case sqltypes.KindFloat:
		return sqltypes.NewFloat(float64(intPool[rng.Intn(len(intPool))]))
	case sqltypes.KindBool:
		return sqltypes.NewBool(rng.Intn(2) == 0)
	default:
		return sqltypes.NewInt(intPool[rng.Intn(len(intPool))])
	}
}

// relationsClosure returns the base relations of the query plus all
// transitively referenced relations, topologically ordered so referenced
// relations come first. FK cycles are rejected.
func relationsClosure(q *qtree.Query) ([]*schema.Relation, error) {
	var order []*schema.Relation
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("mutation: foreign-key cycle through %s", name)
		case 2:
			return nil
		}
		state[name] = 1
		rel := q.Schema.Relation(name)
		if rel == nil {
			return fmt.Errorf("mutation: unknown relation %s", name)
		}
		for _, fk := range rel.ForeignKeys {
			if err := visit(fk.RefTable); err != nil {
				return err
			}
		}
		state[name] = 2
		order = append(order, rel)
		return nil
	}
	for _, occ := range q.Occs {
		if err := visit(occ.Rel.Name); err != nil {
			return nil, err
		}
	}
	for _, sub := range q.Subs {
		for _, occ := range sub.Occs {
			if err := visit(occ.Rel.Name); err != nil {
				return nil, err
			}
		}
	}
	return order, nil
}
