package mutation

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/schema"
	"repro/internal/sqltypes"
	"repro/internal/testutil"
)

// bulkDataset builds a dataset with n matching instructor/teaches rows,
// big enough that one kill-matrix cell takes measurable time.
func bulkDataset(n int) *schema.Dataset {
	ds := schema.NewDataset("bulk")
	for i := 0; i < n; i++ {
		id := int64(i)
		ds.Insert("instructor", sqltypes.Row{sqltypes.NewInt(id), sqltypes.NewString("n"), sqltypes.NewInt(50000 + id)})
		ds.Insert("teaches", sqltypes.Row{sqltypes.NewInt(id), sqltypes.NewInt(id % 7)})
	}
	return ds
}

func TestEvaluateContextPreCanceled(t *testing.T) {
	query := q(t, testDDL, `SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000`)
	ms, err := Space(query, DefaultOptions())
	if err != nil {
		t.Fatalf("Space: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		rep, err := EvaluateContext(ctx, query, ms, []*schema.Dataset{bulkDataset(4)}, EvalOptions{Parallelism: par})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: pre-canceled evaluate: got %v, want context.Canceled", par, err)
		}
		if rep != nil {
			t.Fatalf("parallelism %d: canceled evaluate must not return a report", par)
		}
	}
}

// TestEvaluateContextCancelMidRun cancels a large evaluation shortly
// after it starts and asserts prompt, leak-free return. The workload —
// every mutant plan against many bulk datasets — takes far longer than
// the cancellation delay, so the cancel always lands mid-run. Run under
// -race in CI.
func TestEvaluateContextCancelMidRun(t *testing.T) {
	query := q(t, testDDL, `SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 50000`)
	ms, err := Space(query, DefaultOptions())
	if err != nil {
		t.Fatalf("Space: %v", err)
	}
	datasets := make([]*schema.Dataset, 64)
	for i := range datasets {
		datasets[i] = bulkDataset(400)
	}

	before := testutil.GoroutineSnapshot()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = EvaluateContext(ctx, query, ms, datasets, EvalOptions{Parallelism: 8})
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled mid-run: got %v, want context.Canceled (after %v)", err, elapsed)
	}
	// The context is checked before every cell, so the return is prompt:
	// at most one in-flight cell per worker after the cancel.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: EvaluateContext took %v", elapsed)
	}

	// All workers must be joined: no goroutines outlive the call
	// (slack 1 for the canceler goroutine above).
	testutil.RequireNoGoroutineLeak(t, before, 1)
}
