package mutation

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/sqltypes"
)

// buildReport constructs a synthetic report with the given kill matrix
// (rows: mutants, columns: datasets).
func buildReport(t *testing.T, matrix [][]bool) *Report {
	t.Helper()
	nd := 0
	if len(matrix) > 0 {
		nd = len(matrix[0])
	}
	rep := &Report{Killed: matrix}
	for d := 0; d < nd; d++ {
		ds := schema.NewDataset("d")
		ds.Insert("t", sqltypes.Row{sqltypes.NewInt(int64(d))})
		rep.Datasets = append(rep.Datasets, ds)
	}
	for range matrix {
		rep.Mutants = append(rep.Mutants, &Mutant{})
	}
	return rep
}

func TestMinimizeDropsRedundant(t *testing.T) {
	// d1 kills {m0,m1}; d2 kills {m0}; d3 kills {m1}: d2,d3 redundant.
	rep := buildReport(t, [][]bool{
		{false, true, true, false},
		{false, true, false, true},
	})
	kept := MinimizeSuite(rep)
	if len(kept) != 2 {
		t.Fatalf("kept %d datasets, want 2 (original + d1)", len(kept))
	}
	if kept[1] != rep.Datasets[1] {
		t.Errorf("kept wrong dataset")
	}
}

func TestMinimizeKeepsOriginal(t *testing.T) {
	// Even when the original kills nothing it is retained.
	rep := buildReport(t, [][]bool{{false, true}})
	kept := MinimizeSuite(rep)
	if len(kept) != 2 || kept[0] != rep.Datasets[0] {
		t.Fatalf("original dataset not retained: %d", len(kept))
	}
}

func TestMinimizePreservesCoverage(t *testing.T) {
	// Random-ish matrix: coverage before and after must be identical.
	matrix := [][]bool{
		{false, true, false, false, true},
		{false, false, true, false, false},
		{false, true, false, true, false},
		{false, false, false, false, false}, // survivor stays a survivor
		{true, false, false, false, false},  // killed by the original
	}
	rep := buildReport(t, matrix)
	kept := MinimizeSuite(rep)
	keptIdx := map[*schema.Dataset]int{}
	for i, ds := range rep.Datasets {
		keptIdx[ds] = i
	}
	covered := func(datasets []*schema.Dataset, mi int) bool {
		for _, ds := range datasets {
			if matrix[mi][keptIdx[ds]] {
				return true
			}
		}
		return false
	}
	for mi := range matrix {
		if covered(rep.Datasets, mi) != covered(kept, mi) {
			t.Errorf("mutant %d coverage changed after minimization", mi)
		}
	}
	if len(kept) >= len(rep.Datasets) {
		t.Errorf("nothing pruned: %d of %d", len(kept), len(rep.Datasets))
	}
}

func TestMinimizeEmpty(t *testing.T) {
	if got := MinimizeSuite(&Report{}); got != nil {
		t.Errorf("empty report minimized to %v", got)
	}
}
