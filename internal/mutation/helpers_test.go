package mutation

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/schema"
	"repro/internal/sqltypes"
)

// singlePlan builds the original-query plan (test helper).
func singlePlan(q *qtree.Query) *engine.Plan { return engine.NewPlan(q) }

// resultKey canonicalizes a result multiset (test helper).
func resultKey(res *engine.Result) string {
	var keys []string
	for _, r := range res.Rows {
		keys = append(keys, r.Key())
	}
	// Order-insensitive: sort.
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return strings.Join(keys, "|")
}

// comparisonDatasets builds boundary datasets for every predicate of the
// query by hand (the core package is not importable here without a
// dependency cycle, so this mirrors its =, <, > construction on the
// instructor relation used by the test).
func comparisonDatasets(t *testing.T, q *qtree.Query) []*schema.Dataset {
	t.Helper()
	mk := func(salary int64, name string) *schema.Dataset {
		ds := schema.NewDataset("boundary")
		ds.Insert("instructor", sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewString(name), sqltypes.NewInt(salary)})
		return ds
	}
	return []*schema.Dataset{
		mk(70000, "x"), mk(69999, "w"), mk(70001, "y"),
		mk(70000, "w"), mk(69999, "x"), mk(70001, "x"),
		mk(70000, "y"), mk(69999, "y"), mk(70001, "w"),
	}
}
