package mutation

import (
	"strings"
	"testing"

	"repro/internal/qtree"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

func ir(id int64, name string, salary int64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(id), sqltypes.NewString(name), sqltypes.NewInt(salary)}
}

func tr(id, course int64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(id), sqltypes.NewInt(course)}
}

func keys(ms []*Mutant) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Key
	}
	return out
}

func TestSubqueryMutantsSpace(t *testing.T) {
	query := q(t, testDDL, `SELECT i.name FROM instructor i WHERE i.id NOT IN (SELECT t.id FROM teaches t WHERE t.course_id > 1)`)
	ms := SubqueryMutants(query)
	if len(ms) != 3 {
		t.Fatalf("NOT IN mutants = %v, want 3 (IN, EXISTS, NOT EXISTS)", keys(ms))
	}
	// An EXISTS form has no outer comparison: the IN forms are not
	// reachable, leaving only the negation.
	query2 := q(t, testDDL, `SELECT i.name FROM instructor i WHERE NOT EXISTS (SELECT * FROM teaches t WHERE t.id = i.id)`)
	ms2 := SubqueryMutants(query2)
	if len(ms2) != 1 || !strings.Contains(ms2[0].Key, "EXISTS") {
		t.Fatalf("NOT EXISTS mutants = %v, want just EXISTS", keys(ms2))
	}
}

func TestHavingMutantsSpace(t *testing.T) {
	query := q(t, testDDL, `SELECT name, COUNT(*) FROM instructor GROUP BY name HAVING COUNT(*) > 2`)
	ms := HavingMutants(query)
	if len(ms) != 5 {
		t.Fatalf("HAVING mutants = %v, want the other 5 operators", keys(ms))
	}
	if len(HavingMutants(q(t, testDDL, `SELECT name, COUNT(*) FROM instructor GROUP BY name`))) != 0 {
		t.Fatal("HAVING-free query grew HAVING mutants")
	}
}

func TestLikeMutantsSpace(t *testing.T) {
	query := q(t, testDDL, `SELECT name FROM instructor WHERE name LIKE 'a%'`)
	ms := LikeMutants(query)
	// neg, flip of %, del of %.
	if len(ms) != 3 {
		t.Fatalf("LIKE 'a%%' mutants = %v, want 3", keys(ms))
	}
	// The comparison space must not touch pattern predicates.
	if n := len(ComparisonMutants(query)); n != 0 {
		t.Fatalf("pattern predicate produced %d comparison mutants", n)
	}
	// Pattern predicates inside a retained block are mutated too.
	query2 := q(t, testDDL, `SELECT i.name FROM instructor i WHERE NOT EXISTS (SELECT * FROM course c WHERE c.title LIKE '_q%')`)
	ms2 := LikeMutants(query2)
	// neg, flip/del of _, flip/del of %.
	if len(ms2) != 5 {
		t.Fatalf("block LIKE '_q%%' mutants = %v, want 5", keys(ms2))
	}
}

// TestNewClassMutantsKilled pins the kill semantics of each new mutant
// family on hand-built datasets: every mutant of each space must differ
// from the original on the given data.
func TestNewClassMutantsKilled(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		gen  func(*qtree.Query) []*Mutant
		ds   func() *schema.Dataset
	}{
		{
			name: "subquery connectives",
			sql:  `SELECT i.name FROM instructor i WHERE i.id NOT IN (SELECT t.id FROM teaches t WHERE t.course_id > 1)`,
			gen:  SubqueryMutants,
			ds: func() *schema.Dataset {
				ds := schema.NewDataset("sub kill")
				ds.Insert("instructor", ir(1, "a", 10))
				ds.Insert("instructor", ir(2, "b", 20))
				ds.Insert("teaches", tr(1, 2)) // in the block (course_id > 1)
				ds.Insert("teaches", tr(2, 1)) // filtered out of the block
				return ds
			},
		},
		{
			name: "having comparisons",
			sql:  `SELECT name, COUNT(*) FROM instructor GROUP BY name HAVING COUNT(*) > 2`,
			gen:  HavingMutants,
			ds: func() *schema.Dataset {
				// Group sizes 2, 1, 3 straddle the threshold so every
				// operator variant selects a different group set.
				ds := schema.NewDataset("having kill")
				ds.Insert("instructor", ir(1, "a", 10))
				ds.Insert("instructor", ir(2, "a", 20))
				ds.Insert("instructor", ir(3, "b", 30))
				ds.Insert("instructor", ir(4, "c", 40))
				ds.Insert("instructor", ir(5, "c", 50))
				ds.Insert("instructor", ir(6, "c", 60))
				return ds
			},
		},
		{
			name: "like patterns",
			sql:  `SELECT name FROM instructor WHERE name LIKE 'a%'`,
			gen:  LikeMutants,
			ds: func() *schema.Dataset {
				ds := schema.NewDataset("like kill")
				ds.Insert("instructor", ir(1, "a", 10))  // matches 'a' and 'a%', not 'a_'
				ds.Insert("instructor", ir(2, "ab", 20)) // matches 'a%' and 'a_', not 'a'
				ds.Insert("instructor", ir(3, "b", 30))  // matches only NOT LIKE
				return ds
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			query := q(t, testDDL, tc.sql)
			ms := tc.gen(query)
			if len(ms) == 0 {
				t.Fatal("no mutants generated")
			}
			rep, err := Evaluate(query, ms, []*schema.Dataset{tc.ds()})
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			for mi, m := range ms {
				if !rep.MutantKilled(mi) {
					t.Errorf("mutant %s (%s) not killed", m.Key, m.Desc)
				}
			}
		})
	}
}

// TestNewClassMutantSQLReparses renders every new-class mutant back to
// SQL and reparses it: mutants must stay inside the supported class.
func TestNewClassMutantSQLReparses(t *testing.T) {
	sch, err := sqlparser.ParseSchema(testDDL)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	queries := []string{
		`SELECT i.name FROM instructor i WHERE i.id NOT IN (SELECT t.id FROM teaches t WHERE t.course_id > 1)`,
		`SELECT i.name FROM instructor i WHERE NOT EXISTS (SELECT * FROM teaches t WHERE t.id = i.id)`,
		`SELECT name, COUNT(*) FROM instructor GROUP BY name HAVING COUNT(*) > 2 AND SUM(salary) <= 100`,
		`SELECT name FROM instructor WHERE name NOT LIKE '_x%' AND salary > 0`,
	}
	for _, sql := range queries {
		query, err := qtree.BuildSQL(sch, sql)
		if err != nil {
			t.Fatalf("BuildSQL(%q): %v", sql, err)
		}
		ms, err := Space(query, DefaultOptions())
		if err != nil {
			t.Fatalf("Space(%q): %v", sql, err)
		}
		for _, m := range ms {
			rendered := qtree.RenderSQLFull(query, m.Plan.Tree, m.Plan.Preds, m.Plan.Subs, m.Plan.Aggs, m.Plan.Having)
			if _, err := qtree.BuildSQL(sch, rendered); err != nil {
				t.Errorf("mutant %s of %q renders unparseable SQL %q: %v", m.Key, sql, rendered, err)
			}
		}
	}
}

// TestEquivalenceCheckerDistinguishesSubMutant exercises the random
// witness search over a query whose only relations appear inside the
// retained block: RandomDataset must populate them.
func TestEquivalenceCheckerDistinguishesSubMutant(t *testing.T) {
	query := q(t, testDDL, `SELECT i.name FROM instructor i WHERE NOT EXISTS (SELECT * FROM teaches t WHERE t.id = i.id)`)
	ms := SubqueryMutants(query)
	if len(ms) != 1 {
		t.Fatalf("mutants = %v, want 1", keys(ms))
	}
	c := NewEquivalenceChecker(7)
	equiv, witness, err := c.Check(query, ms[0])
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if equiv || witness == nil {
		t.Fatal("EXISTS mutant of NOT EXISTS reported equivalent; random datasets never populated the block relations")
	}
}
