// Determinism and race-regression tests for the parallel kill-goal
// pipeline: Generate() must produce a byte-identical Suite for every
// worker count, and the kill matrix must be invariant under evaluator
// parallelism (the ISSUE's determinism contract; see internal/core/goals.go).
package xdata_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mutation"
	"repro/internal/qtree"
	"repro/internal/university"
)

// benchQueriesUnderTest returns the university workloads the determinism
// test covers: every Table I and Table II query at its first (and, when
// present, last) foreign-key count. -short trims to the first three of
// each family.
func benchQueriesUnderTest(t *testing.T) []struct {
	name string
	bq   university.BenchQuery
	fk   int
} {
	t.Helper()
	var out []struct {
		name string
		bq   university.BenchQuery
		fk   int
	}
	add := func(bq university.BenchQuery, fk int) {
		out = append(out, struct {
			name string
			bq   university.BenchQuery
			fk   int
		}{bq.Name + "/fk=" + itoa(fk), bq, fk})
	}
	for _, queries := range [][]university.BenchQuery{university.TableIQueries(), university.TableIIQueries()} {
		limit := len(queries)
		if testing.Short() && limit > 3 {
			limit = 3
		}
		for i := 0; i < limit; i++ {
			bq := queries[i]
			add(bq, bq.FKCounts[0])
			if !testing.Short() && len(bq.FKCounts) > 1 {
				add(bq, bq.FKCounts[len(bq.FKCounts)-1])
			}
		}
	}
	return out
}

// suiteFingerprint renders every observable, deterministic part of a
// suite: the original dataset, each kill dataset (purpose + contents),
// and each skip record.
func suiteFingerprint(s *core.Suite) []string {
	var out []string
	if s.Original != nil {
		out = append(out, "original:"+s.Original.String())
	} else {
		out = append(out, "original:<nil>")
	}
	for _, ds := range s.Datasets {
		out = append(out, "dataset:"+ds.Purpose+"\n"+ds.String())
	}
	for _, sk := range s.Skipped {
		out = append(out, "skip:"+sk.Purpose+" / "+sk.Reason)
	}
	return out
}

// TestParallelGenerateDeterminism asserts that Generate() with
// Parallelism=1 and Parallelism=8 produce identical Suite.Datasets,
// Skipped, work counters, and kill matrices for the university bench
// queries.
func TestParallelGenerateDeterminism(t *testing.T) {
	for _, tc := range benchQueriesUnderTest(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sch := university.Schema(tc.fk)
			q, err := qtree.BuildSQL(sch, tc.bq.SQL)
			if err != nil {
				t.Fatal(err)
			}
			seqOpts := core.DefaultOptions()
			seqOpts.Parallelism = 1
			parOpts := core.DefaultOptions()
			parOpts.Parallelism = 8

			seq, err := core.NewGenerator(q, seqOpts).Generate()
			if err != nil {
				t.Fatalf("sequential generate: %v", err)
			}
			par, err := core.NewGenerator(q, parOpts).Generate()
			if err != nil {
				t.Fatalf("parallel generate: %v", err)
			}

			sf, pf := suiteFingerprint(seq), suiteFingerprint(par)
			if !reflect.DeepEqual(sf, pf) {
				t.Fatalf("suite fingerprints differ between Parallelism=1 and 8:\n--- sequential (%d entries)\n%v\n--- parallel (%d entries)\n%v",
					len(sf), sf, len(pf), pf)
			}

			// Deterministic work counters must match too (solve wall
			// times legitimately differ).
			type counters struct {
				Calls, Sat, Unsat     int
				Nodes, Restarts, Size int64
			}
			sc := counters{seq.Stats.SolverCalls, seq.Stats.SatCount, seq.Stats.UnsatCount, seq.Stats.SolverNodes, seq.Stats.SolverRestarts, seq.Stats.SolverProblemSize}
			pc := counters{par.Stats.SolverCalls, par.Stats.SatCount, par.Stats.UnsatCount, par.Stats.SolverNodes, par.Stats.SolverRestarts, par.Stats.SolverProblemSize}
			if sc != pc {
				t.Fatalf("solver work counters differ: sequential %+v, parallel %+v", sc, pc)
			}

			// Kill matrices: byte-identical across generation AND
			// evaluation parallelism.
			ms, err := mutation.Space(q, mutation.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			seqRep, err := mutation.EvaluateOpts(q, ms, seq.All(), mutation.EvalOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			parRep, err := mutation.EvaluateOpts(q, ms, par.All(), mutation.EvalOptions{Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqRep.Killed, parRep.Killed) {
				t.Fatalf("kill matrices differ between sequential and parallel evaluation")
			}
		})
	}
}

// TestParallelGenerateRace exercises a 4-way parallel generation and
// kill-matrix evaluation; run with -race it is the regression test for
// shared-state mutation inside the pipeline (e.g. the former
// ForceInputTuples toggle on shared Generator options).
func TestParallelGenerateRace(t *testing.T) {
	bq := university.TableIQueries()[2] // Q3: 3 joins, enough goals to contend
	sch := university.Schema(1)
	q, err := qtree.BuildSQL(sch, bq.SQL)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Parallelism = 4
	// Input-database constraints exercise the per-problem forceInput
	// threading (the retry path runs with and without them).
	opts.InputDB = university.SampleDB(sch, 3)
	opts.ForceInputTuples = true
	suite, err := core.NewGenerator(q, opts).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Datasets) == 0 {
		t.Fatal("parallel generate produced no datasets")
	}
	ms, err := mutation.Space(q, mutation.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mutation.EvaluateOpts(q, ms, suite.All(), mutation.EvalOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.KilledCount() == 0 {
		t.Fatal("parallel evaluation killed no mutants")
	}
}
