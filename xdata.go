// Package xdata is a from-scratch Go implementation of X-Data
// ("Generating Test Data for Killing SQL Mutants: A Constraint-based
// Approach", Shah et al., ICDE 2010): given a database schema with
// primary- and foreign-key constraints and a single-block SQL query, it
// generates a small, complete test suite of datasets that kills every
// non-equivalent mutant in the paper's mutation space — join-type
// mutations over all equivalent join orders, comparison-operator
// mutations, and unconstrained-aggregation mutations.
//
// Basic use:
//
//	sch, _ := xdata.ParseSchema(ddl)
//	q, _ := xdata.ParseQuery(sch, "SELECT * FROM instructor i, teaches t WHERE i.id = t.id")
//	suite, _ := xdata.Generate(q, xdata.DefaultOptions())
//	for _, ds := range suite.All() {
//	    fmt.Println(ds.Purpose)
//	    fmt.Println(ds.SQLInserts(sch))
//	}
//
// To see which mutants the suite kills (and verify the completeness
// guarantee on surviving mutants):
//
//	report, _ := xdata.Analyze(q, suite, xdata.DefaultMutationOptions())
//	fmt.Println(report)
//
// The heavy lifting lives in internal packages: internal/sqlparser (the
// SQL and DDL parser), internal/qtree (normalization and equivalence
// classes), internal/solver (the finite-domain constraint solver standing
// in for CVC3), internal/core (the generation algorithms), internal/engine
// (the relational executor) and internal/mutation (mutant spaces and kill
// checking). This package re-exports the stable surface.
package xdata

import (
	"context"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/limits"
	"repro/internal/mutation"
	"repro/internal/qtree"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// Re-exported data model types.
type (
	// Schema is a database catalog: relations with typed attributes,
	// primary keys and foreign keys.
	Schema = schema.Schema
	// Relation is one table definition.
	Relation = schema.Relation
	// Attribute is a typed column.
	Attribute = schema.Attribute
	// ForeignKey is a referential constraint.
	ForeignKey = schema.ForeignKey
	// Dataset is a test case: a legal database instance with a purpose
	// label.
	Dataset = schema.Dataset
	// Row is a tuple of SQL values.
	Row = sqltypes.Row
	// Value is a NULL-aware SQL value.
	Value = sqltypes.Value
	// Query is a parsed, normalized query.
	Query = qtree.Query
	// Suite is a generated test suite with statistics and skip records.
	Suite = core.Suite
	// Options configure generation.
	Options = core.Options
	// Mutant is one executable query mutation.
	Mutant = mutation.Mutant
	// MutationOptions configure the mutant space.
	MutationOptions = mutation.Options
	// EvalOptions configure kill-matrix evaluation (worker count and
	// the NoCompiledEngine ablation).
	EvalOptions = mutation.EvalOptions
	// Report is the kill matrix of a mutant space against a suite.
	Report = mutation.Report
	// Result is a query result (a bag of rows).
	Result = engine.Result
	// Failure records a kill goal abandoned for budget, panic or
	// cancellation reasons (Suite.Incomplete).
	Failure = core.Failure
	// GoalError wraps a panic recovered inside one kill goal.
	GoalError = core.GoalError
	// Limits are resource-governance ceilings for untrusted inputs:
	// byte caps on DDL/query text, parser recursion depth, schema
	// cardinality, and candidate-domain width. The zero value of a
	// field means unlimited; DefaultLimits returns the production
	// ceilings and UnlimitedLimits disables them all.
	Limits = limits.Limits
)

// ErrPartialSuite is returned (wrapped) by GenerateContext alongside a
// usable partial suite when some kill goals were abandoned for budget,
// panic or cancellation reasons; the abandoned goals are listed in
// Suite.Incomplete. Test with errors.Is.
var ErrPartialSuite = core.ErrPartialSuite

// ErrBadOptions is the sentinel wrapped by every Options validation
// failure (negative budgets, worker counts or ceilings, inconsistent
// combinations): Generate and GenerateContext refuse to start rather
// than silently coercing a caller bug. Test with errors.Is.
var ErrBadOptions = core.ErrBadOptions

// ErrUnsupported is the sentinel matched by every rejection of a
// construct that parses but sits outside the supported query class
// (OR/NOT in conjunctive position, nested subqueries, aggregating
// subqueries, HAVING without aggregation, ...). The CLIs map it to
// exit code 2 and the daemon to HTTP 422 with kind "unsupported",
// distinguishing a well-formed-but-unsupported query from syntax
// errors and internal failures. Test with errors.Is.
var ErrUnsupported = sqlparser.ErrUnsupported

// ErrResourceLimit is the sentinel wrapped by every resource-governance
// rejection: oversized DDL/query text, excessive expression or join
// nesting, schema cardinality over the ceiling, or a candidate-value
// domain wider than Options.MaxDomainSize. Test with errors.Is.
var ErrResourceLimit = limits.ErrResourceLimit

// DefaultLimits returns the production resource-governance ceilings
// applied by ParseSchema, ParseQuery and ParseInserts (generous enough
// for every legitimate workload in the paper's experiments).
func DefaultLimits() Limits { return limits.Default() }

// UnlimitedLimits disables all resource governance, for trusted
// callers; use with ParseSchemaLimits and ParseQueryLimits.
func UnlimitedLimits() Limits { return limits.Unlimited() }

// ParseSchemaLimits is ParseSchema under explicit resource ceilings.
func ParseSchemaLimits(ddl string, l Limits) (*Schema, error) {
	return sqlparser.ParseSchemaLimits(ddl, l)
}

// ParseQueryLimits is ParseQuery under explicit resource ceilings.
func ParseQueryLimits(sch *Schema, sql string, l Limits) (*Query, error) {
	stmt, err := sqlparser.ParseQueryLimits(sql, l)
	if err != nil {
		return nil, err
	}
	return qtree.Build(sch, stmt)
}

// Value constructors.
var (
	// NewInt builds an integer value.
	NewInt = sqltypes.NewInt
	// NewFloat builds a floating-point value.
	NewFloat = sqltypes.NewFloat
	// NewString builds a string value.
	NewString = sqltypes.NewString
	// Null builds the NULL value.
	Null = sqltypes.Null
	// NewDataset builds an empty dataset with a purpose label.
	NewDataset = schema.NewDataset
)

// ParseSchema parses CREATE TABLE statements into a Schema.
func ParseSchema(ddl string) (*Schema, error) { return sqlparser.ParseSchema(ddl) }

// ParseQuery parses and normalizes a single-block SQL query against a
// schema, enforcing the supported query class (paper assumptions A3–A6).
func ParseQuery(sch *Schema, sql string) (*Query, error) { return qtree.BuildSQL(sch, sql) }

// DefaultOptions returns the paper's default generation configuration
// (quantifier unfolding enabled).
func DefaultOptions() Options { return core.DefaultOptions() }

// Generate produces the X-Data test suite for a query: one dataset
// satisfying the original query plus datasets killing each mutant group.
// The number of datasets is linear in the size of the query even though
// the join-order mutant space is exponential.
func Generate(q *Query, opts Options) (*Suite, error) {
	return core.NewGenerator(q, opts).Generate()
}

// GenerateContext is Generate with cooperative cancellation and graceful
// degradation: kill goals abandoned for budget, panic or cancellation
// reasons are recorded in Suite.Incomplete and the call returns the
// partial suite alongside an error wrapping ErrPartialSuite. Per-goal
// budgets are configured by Options.GoalTimeout and Options.GoalNodeLimit.
func GenerateContext(ctx context.Context, q *Query, opts Options) (*Suite, error) {
	return core.NewGenerator(q, opts).GenerateContext(ctx)
}

// DefaultMutationOptions matches the paper's experiments: all equivalent
// join orders, full-outer-join mutations excluded.
func DefaultMutationOptions() MutationOptions { return mutation.DefaultOptions() }

// Mutants enumerates the de-duplicated mutant space of a query.
func Mutants(q *Query, opts MutationOptions) ([]*Mutant, error) {
	return mutation.Space(q, opts)
}

// Analyze generates the kill matrix: which datasets of the suite kill
// which mutants of the space. Evaluation runs on all CPUs; use
// AnalyzeParallel for an explicit worker count.
func Analyze(q *Query, suite *Suite, opts MutationOptions) (*Report, error) {
	ms, err := mutation.Space(q, opts)
	if err != nil {
		return nil, err
	}
	return mutation.Evaluate(q, ms, suite.All())
}

// AnalyzeParallel is Analyze with an explicit kill-matrix worker count
// (<= 0 selects all CPUs, 1 evaluates sequentially). The Report is
// identical for every worker count.
func AnalyzeParallel(q *Query, suite *Suite, opts MutationOptions, workers int) (*Report, error) {
	ms, err := mutation.Space(q, opts)
	if err != nil {
		return nil, err
	}
	return mutation.EvaluateOpts(q, ms, suite.All(), mutation.EvalOptions{Parallelism: workers})
}

// AnalyzeContext is AnalyzeParallel with cooperative cancellation: a
// canceled context aborts the kill-matrix evaluation promptly and
// returns the context's error.
func AnalyzeContext(ctx context.Context, q *Query, suite *Suite, opts MutationOptions, workers int) (*Report, error) {
	return AnalyzeOptsContext(ctx, q, suite, opts, EvalOptions{Parallelism: workers})
}

// AnalyzeOpts is Analyze with full evaluation options: worker count and
// the NoCompiledEngine ablation (row-at-a-time reference interpreter
// instead of the compiled columnar executor). The Report — including
// every kill bit — is identical under either engine; only Report.Exec
// and wall-clock time differ.
func AnalyzeOpts(q *Query, suite *Suite, opts MutationOptions, eopts EvalOptions) (*Report, error) {
	return AnalyzeOptsContext(context.Background(), q, suite, opts, eopts)
}

// AnalyzeOptsContext is AnalyzeOpts with cooperative cancellation.
func AnalyzeOptsContext(ctx context.Context, q *Query, suite *Suite, opts MutationOptions, eopts EvalOptions) (*Report, error) {
	ms, err := mutation.Space(q, opts)
	if err != nil {
		return nil, err
	}
	return mutation.EvaluateContext(ctx, q, ms, suite.All(), eopts)
}

// Execute runs the original query against a dataset using the built-in
// relational engine.
func Execute(q *Query, ds *Dataset) (*Result, error) {
	return engine.NewPlan(q).Run(ds)
}

// CheckEquivalent tests whether a mutant is (probably) equivalent to the
// original query by running both on many random schema-valid databases.
// It returns a witness dataset when a difference is found.
func CheckEquivalent(q *Query, m *Mutant, trials int, seed int64) (bool, *Dataset, error) {
	chk := mutation.NewEquivalenceChecker(seed)
	if trials > 0 {
		chk.Trials = trials
	}
	return chk.Check(q, m)
}

// ParseInserts parses INSERT INTO statements into a dataset validated
// against the schema; useful for loading an input database (§VI-A).
func ParseInserts(sch *Schema, sql string) (*Dataset, error) {
	return sqlparser.ParseInserts(sch, sql)
}

// Minimize prunes redundant datasets from a generated suite: it returns
// the smallest greedy subset of suite.All() that kills exactly the same
// mutants (the dataset-minimization direction the paper lists as future
// work in §VII). The original-query dataset is always retained.
func Minimize(q *Query, suite *Suite, opts MutationOptions) ([]*Dataset, error) {
	return MinimizeOpts(q, suite, opts, EvalOptions{})
}

// MinimizeOpts is Minimize with explicit kill-matrix evaluation options.
func MinimizeOpts(q *Query, suite *Suite, opts MutationOptions, eopts EvalOptions) ([]*Dataset, error) {
	rep, err := AnalyzeOpts(q, suite, opts, eopts)
	if err != nil {
		return nil, err
	}
	return mutation.MinimizeSuite(rep), nil
}
