package xdata_test

import (
	"repro"
	"repro/internal/mutation"
)

// analyzeDatasets evaluates a mutant space against an explicit dataset
// list (test helper mirroring xdata.Analyze for minimized suites).
func analyzeDatasets(q *xdata.Query, ms []*xdata.Mutant, datasets []*xdata.Dataset) (*xdata.Report, error) {
	return mutation.Evaluate(q, ms, datasets)
}
